package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTraceID()
	sp := NewSpanID()
	h := FormatTraceparent(tr, sp)
	if len(h) != 55 {
		t.Fatalf("traceparent %q: want 55 chars, got %d", h, len(h))
	}
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) not ok", h)
	}
	if gotT != tr || gotS != sp {
		t.Fatalf("round trip: got %s/%s want %s/%s", gotT, gotS, tr, sp)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short-0011223344556677-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", // missing flags
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01",
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) = ok, want reject", h)
		}
	}
}

func TestTraceIDJSONRoundTrip(t *testing.T) {
	tr := NewTraceID()
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if want := `"` + tr.String() + `"`; string(b) != want {
		t.Fatalf("marshal: got %s want %s", b, want)
	}
	var back TraceID
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != tr {
		t.Fatalf("round trip: got %s want %s", back, tr)
	}
}

func TestReqTraceSpans(t *testing.T) {
	rt := NewReqTrace("server", "request", TraceID{}, SpanID{}, 64, 256)
	if rt.TraceID().IsZero() {
		t.Fatal("fresh ReqTrace has zero trace ID")
	}
	queue := rt.Start("queue")
	queue.End()
	solve := rt.Start("solve")
	solve.Annotate("engine", "cut")
	inner := rt.StartChild(solve, "verify")
	inner.End()
	solve.End()

	// A phase-end event joined via the collector becomes an engine span.
	rt.Observer().Observe(Event{
		Kind: KindPhaseEnd, Phase: "cuts",
		Time: time.Now(), Units: int64(3 * time.Millisecond),
	})

	spans := rt.Finish(solve.ID())
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.Trace != rt.TraceID() {
			t.Errorf("span %q carries trace %s, want %s", s.Name, s.Trace, rt.TraceID())
		}
		if s.Process != "server" {
			t.Errorf("span %q process %q, want server", s.Name, s.Process)
		}
	}
	for _, name := range []string{"request", "queue", "solve", "verify", "engine:cuts"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("span %q missing; have %v", name, spanNames(spans))
		}
	}
	if byName["queue"].Parent != rt.RootSpanID() {
		t.Error("queue span not parented under root")
	}
	if byName["verify"].Parent != byName["solve"].ID {
		t.Error("verify span not parented under solve")
	}
	if byName["engine:cuts"].Parent != byName["solve"].ID {
		t.Error("engine phase span not parented under the solve span")
	}
	if byName["solve"].Attrs["engine"] != "cut" {
		t.Error("solve span lost its engine attribute")
	}
	if byName["request"].End.Before(byName["request"].Start) {
		t.Error("root span ends before it starts")
	}
}

func TestReqTraceBounded(t *testing.T) {
	rt := NewReqTrace("p", "root", TraceID{}, SpanID{}, 2, 4)
	for i := 0; i < 5; i++ {
		rt.Start("s").End()
	}
	if got := rt.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	spans := rt.Finish(SpanID{})
	if len(spans) != 3 { // root + 2 kept
		t.Fatalf("got %d spans, want 3 (root + bound)", len(spans))
	}
}

func TestReqTraceNilIsInert(t *testing.T) {
	var rt *ReqTrace
	if !rt.TraceID().IsZero() || !rt.RootSpanID().IsZero() {
		t.Fatal("nil ReqTrace leaks IDs")
	}
	if rt.Observer() != nil {
		t.Fatal("nil ReqTrace returns non-nil observer")
	}
	s := rt.Start("x")
	s.Annotate("k", "v")
	s.End()
	rt.AnnotateRoot("k", "v")
	if got := rt.Finish(SpanID{}); got != nil {
		t.Fatalf("nil Finish returned %v", got)
	}
}

// The no-tracing serving path must stay allocation-free: a nil
// *ReqTrace costs only nil checks, matching the nil-observer contract
// the mapper pins with TestObserverZeroAlloc.
func TestReqTraceOffZeroAlloc(t *testing.T) {
	var rt *ReqTrace
	allocs := testing.AllocsPerRun(1000, func() {
		s := rt.Start("queue")
		s.Annotate("engine", "tree")
		s.End()
		_ = rt.TraceID()
		_ = rt.Observer()
		rt.Finish(SpanID{})
	})
	if allocs != 0 {
		t.Fatalf("nil ReqTrace path allocates %.1f/op, want 0", allocs)
	}
}

func TestSpanJSONLAndCollector(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSpanJSONL(&buf)
	var coll SpanCollector
	sp := Span{
		Trace: NewTraceID(), ID: NewSpanID(), Process: "client", Name: "attempt",
		Start: time.Now(), End: time.Now().Add(time.Millisecond),
		Attrs: map[string]string{"addr": "127.0.0.1:0"},
	}
	sink.RecordSpan(sp)
	coll.RecordSpan(sp)
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace != sp.Trace || back.ID != sp.ID || back.Name != sp.Name {
		t.Fatalf("JSONL round trip mismatch: %+v vs %+v", back, sp)
	}
	if got := coll.Spans(); len(got) != 1 || got[0].ID != sp.ID {
		t.Fatalf("collector: %+v", got)
	}
}

func TestOutcomeClass(t *testing.T) {
	cases := map[int]string{
		0: "abandoned", 200: "2xx", 201: "2xx", 400: "4xx",
		429: "429", 500: "500", 503: "503", 504: "504", 502: "5xx",
	}
	for code, want := range cases {
		if got := OutcomeClass(code); got != want {
			t.Errorf("OutcomeClass(%d) = %q, want %q", code, got, want)
		}
	}
}

func TestReadTraceJSONLMixed(t *testing.T) {
	tr := NewTraceID()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	// One event, one span, one access record with an embedded span.
	if err := enc.Encode(Event{Kind: KindMapStart, Time: time.Now(), K: 4}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Span{Trace: tr, ID: NewSpanID(), Process: "client", Name: "attempt 1", Start: time.Now(), End: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(AccessRecord{
		Time: time.Now(), Trace: tr, Code: 200, Outcome: "2xx",
		Spans: []Span{{Trace: tr, ID: NewSpanID(), Process: "chortled", Name: "request", Start: time.Now(), End: time.Now()}},
	}); err != nil {
		t.Fatal(err)
	}
	events, spans, err := ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != KindMapStart {
		t.Fatalf("events: %+v", events)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (loose + embedded)", len(spans))
	}

	if _, _, err := ReadTraceJSONL(strings.NewReader(`{"neither":"shape"}` + "\n")); err == nil {
		t.Fatal("unrecognizable line accepted")
	}
}

func TestWriteChromeTraceMulti(t *testing.T) {
	tr := NewTraceID()
	base := time.Now()
	client := []Span{
		{Trace: tr, ID: NewSpanID(), Process: "client", Name: "map", Start: base, End: base.Add(10 * time.Millisecond)},
		{Trace: tr, ID: NewSpanID(), Process: "client", Name: "attempt 1", Start: base, End: base.Add(2 * time.Millisecond), Attrs: map[string]string{"outcome": "429"}},
	}
	server := []Span{
		{Trace: tr, ID: NewSpanID(), Process: "chortled", Name: "request", Start: base.Add(time.Millisecond), End: base.Add(9 * time.Millisecond)},
	}
	events := []Event{{Kind: KindPhaseEnd, Phase: "cuts", Time: base.Add(8 * time.Millisecond), Units: int64(2 * time.Millisecond)}}

	var buf bytes.Buffer
	if err := WriteChromeTraceMulti(&buf, append(client, server...), events); err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	pids := map[float64]string{}
	spansSeen := 0
	for _, r := range records {
		if r["name"] == "process_name" {
			args := r["args"].(map[string]any)
			pids[r["pid"].(float64)] = args["name"].(string)
		}
		if r["ph"] == "X" {
			spansSeen++
			if r["dur"].(float64) < 1 {
				t.Errorf("X record %v has no duration", r["name"])
			}
		}
	}
	if len(pids) != 3 { // client, chortled, engine events
		t.Fatalf("got %d processes (%v), want 3", len(pids), pids)
	}
	if spansSeen != 4 { // 3 spans + 1 phase
		t.Fatalf("got %d X records, want 4", spansSeen)
	}
}

func spanNames(spans []Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
