package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderRoundTrip(t *testing.T) {
	f := NewFlightRecorder(16, 0)
	tr := NewTraceID()
	f.RecordAccess(AccessRecord{Time: time.Now(), Trace: tr, Code: 200, Outcome: "2xx", Engine: "tree", K: 4})
	f.RecordDecision(OverloadDecision{Trace: tr, Code: 429, Reason: ReasonQueueFull, WaitNS: 123})
	f.RecordNote("valve engaged")

	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	var buf bytes.Buffer
	n, err := f.WriteJSONL(&buf)
	if err != nil || n != 3 {
		t.Fatalf("WriteJSONL = (%d, %v), want (3, nil)", n, err)
	}
	back, err := ReadFlightJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadFlightJSONL: %v", err)
	}
	if len(back) != 3 {
		t.Fatalf("read %d entries, want 3", len(back))
	}
	if back[0].Kind != FlightAccess || back[0].Access == nil || back[0].Access.Trace != tr {
		t.Fatalf("access entry mangled: %+v", back[0])
	}
	if back[1].Kind != FlightDecision || back[1].Decision == nil ||
		back[1].Decision.Reason != ReasonQueueFull || back[1].Decision.WaitNS != 123 {
		t.Fatalf("decision entry mangled: %+v", back[1])
	}
	if back[2].Kind != FlightNote || back[2].Note != "valve engaged" {
		t.Fatalf("note entry mangled: %+v", back[2])
	}
	// Sequence numbers are monotonic from 1.
	for i, e := range back {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	f := NewFlightRecorder(4, 0)
	for i := 0; i < 10; i++ {
		f.RecordNote(fmt.Sprintf("note-%d", i))
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	if f.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", f.Dropped())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	// Oldest-first, newest retained.
	for i, e := range snap {
		want := fmt.Sprintf("note-%d", 6+i)
		if e.Note != want {
			t.Fatalf("snapshot[%d] = %q, want %q", i, e.Note, want)
		}
		if i > 0 && snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot not seq-ordered: %d then %d", snap[i-1].Seq, snap[i].Seq)
		}
	}
}

func TestFlightRecorderRetentionWindow(t *testing.T) {
	f := NewFlightRecorder(16, 50*time.Millisecond)
	old := FlightEntry{Kind: FlightNote, Note: "ancient", Time: time.Now().Add(-time.Hour)}
	f.record(old)
	f.RecordNote("fresh")
	snap := f.Snapshot()
	if len(snap) != 1 || snap[0].Note != "fresh" {
		t.Fatalf("retention did not drop the ancient entry: %+v", snap)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f.RecordNote("g")
				f.RecordDecision(OverloadDecision{Code: 429, Reason: ReasonQueueFull})
				_ = f.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if f.Len() != 64 {
		t.Fatalf("Len = %d, want 64", f.Len())
	}
	if got := f.Dropped(); got != 8*200-64 {
		t.Fatalf("Dropped = %d, want %d", got, 8*200-64)
	}
}

// TestFlightRecorderOffZeroAlloc pins the disabled-path contract: a nil
// recorder must add zero allocations to the request hot path, so an
// operator who never passes -postmortem-dir pays nothing.
func TestFlightRecorderOffZeroAlloc(t *testing.T) {
	var f *FlightRecorder
	dec := OverloadDecision{Code: 429, Reason: ReasonQueueFull, WaitNS: 1}
	acc := AccessRecord{Code: 200, Outcome: "2xx"}
	allocs := testing.AllocsPerRun(1000, func() {
		f.RecordDecision(dec)
		f.RecordAccess(acc)
		f.RecordNote("x")
		_ = f.Len()
		_ = f.Dropped()
		_ = f.Snapshot()
	})
	if allocs != 0 {
		t.Fatalf("nil FlightRecorder allocates %v per op, want 0", allocs)
	}
}

func TestReadFlightJSONLMalformed(t *testing.T) {
	_, err := ReadFlightJSONL(strings.NewReader("{\"seq\":1,\"kind\":\"note\"}\nnot json\n"))
	if err == nil {
		t.Fatal("malformed line did not error")
	}
}
