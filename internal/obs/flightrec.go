package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// The flight recorder is chortled's black box: an always-on, bounded,
// in-memory ring that retains the recent past — finished requests,
// overload-control decisions with the state that caused them, and
// free-form operator notes — so that when something goes wrong (a
// panic-500, a memory-valve engagement, an SLO burn) the process can
// write a self-contained postmortem bundle describing the seconds
// leading up to the incident, without anyone having been watching.
//
// The same passivity contract as the rest of this package applies: a
// nil *FlightRecorder is the disabled state, every method on it is a
// nil check, and the capture path adds zero allocations to the request
// hot path (pinned by TestFlightRecorderOffZeroAlloc).

// Flight entry kinds.
const (
	// FlightAccess is one finished request (the embedded AccessRecord).
	FlightAccess = "access"
	// FlightDecision is one overload-control decision (429/503/504/500)
	// with the admission state that caused it.
	FlightDecision = "decision"
	// FlightNote is a free-form lifecycle marker (valve engaged, SLO
	// status change, snapshot rejected, dump triggered).
	FlightNote = "note"
)

// Overload-control decision reasons — the canonical vocabulary shared
// by the access log, the flight ring, and the postmortem report. Every
// 429/503/504 the server emits carries exactly one of these.
const (
	ReasonQueueFull       = "queue-full"       // 429: slots and queue both full
	ReasonCoDel           = "codel"            // 503: remaining deadline below observed p95 solve time
	ReasonDeadlineExpired = "deadline-expired" // 504/503: deadline spent in queue or mid-solve
	ReasonMemValve        = "mem-valve"        // 503: memory-pressure valve closed the queue
	ReasonDraining        = "draining"         // 503: SIGTERM drain in progress
	ReasonPanic           = "panic"            // 500: isolated per-request panic
)

// OverloadDecision records why the server refused or failed one
// request: the canonical reason, the HTTP code it produced, and the
// admission-control state (queue wait, remaining deadline, observed
// p95) that drove the decision — the numbers an operator needs to
// reconstruct "why were we shedding at 03:12" from the black box alone.
type OverloadDecision struct {
	Time        time.Time `json:"time"`
	Trace       TraceID   `json:"trace_id"`
	Code        int       `json:"code"`
	Reason      string    `json:"reason"`
	Engine      string    `json:"engine,omitempty"`
	Detail      string    `json:"detail,omitempty"`
	WaitNS      int64     `json:"wait_ns,omitempty"`      // time spent queued
	RemainingNS int64     `json:"remaining_ns,omitempty"` // deadline left at decision time
	P95NS       int64     `json:"p95_ns,omitempty"`       // engine p95 solve window (CoDel drops)
}

// FlightEntry is one ring slot: a sequence number (monotonic across the
// recorder's life, so drops are visible as gaps), a timestamp, and
// exactly one payload according to Kind.
type FlightEntry struct {
	Seq      uint64            `json:"seq"`
	Time     time.Time         `json:"time"`
	Kind     string            `json:"kind"`
	Access   *AccessRecord     `json:"access,omitempty"`
	Decision *OverloadDecision `json:"decision,omitempty"`
	Note     string            `json:"note,omitempty"`
}

// FlightRecorder is a bounded ring of FlightEntries. Writers append
// under one mutex (the entries are built by the caller, so the critical
// section is a copy); readers snapshot. The zero capacity defaults to
// 4096 entries; retention additionally drops entries older than the
// window at snapshot time, so a bundle describes "the last N seconds",
// not "the last N requests ever".
type FlightRecorder struct {
	mu        sync.Mutex
	ring      []FlightEntry
	head      int // next write position once len(ring) == cap(ring)
	seq       uint64
	dropped   int64
	retention time.Duration
}

// NewFlightRecorder returns a recorder retaining at most capacity
// entries (<= 0 means 4096) no older than retention (<= 0 means
// unbounded age — capacity alone bounds the ring).
func NewFlightRecorder(capacity int, retention time.Duration) *FlightRecorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &FlightRecorder{
		ring:      make([]FlightEntry, 0, capacity),
		retention: retention,
	}
}

// record appends one entry, overwriting the oldest when full.
func (f *FlightRecorder) record(e FlightEntry) {
	f.mu.Lock()
	f.seq++
	e.Seq = f.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, e)
	} else {
		f.ring[f.head] = e
		f.head++
		if f.head == len(f.ring) {
			f.head = 0
		}
		f.dropped++
	}
	f.mu.Unlock()
}

// RecordAccess retains one finished request. Nil recorders discard.
func (f *FlightRecorder) RecordAccess(rec AccessRecord) {
	if f == nil {
		return
	}
	cp := rec
	f.record(FlightEntry{Time: rec.Time, Kind: FlightAccess, Access: &cp})
}

// RecordDecision retains one overload-control decision. Nil recorders
// discard.
func (f *FlightRecorder) RecordDecision(d OverloadDecision) {
	if f == nil {
		return
	}
	cp := d
	f.record(FlightEntry{Time: d.Time, Kind: FlightDecision, Decision: &cp})
}

// RecordNote retains a lifecycle marker. Nil recorders discard.
func (f *FlightRecorder) RecordNote(note string) {
	if f == nil {
		return
	}
	f.record(FlightEntry{Kind: FlightNote, Note: note})
}

// Len returns the number of retained entries.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}

// Dropped returns how many entries the ring has overwritten.
func (f *FlightRecorder) Dropped() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Snapshot returns the retained entries oldest-first, excluding any
// older than the retention window. Safe to call while writers append.
func (f *FlightRecorder) Snapshot() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	ordered := make([]FlightEntry, 0, len(f.ring))
	ordered = append(ordered, f.ring[f.head:]...)
	ordered = append(ordered, f.ring[:f.head]...)
	retention := f.retention
	f.mu.Unlock()

	if retention <= 0 {
		return ordered
	}
	cutoff := time.Now().Add(-retention)
	for i, e := range ordered {
		if !e.Time.Before(cutoff) {
			return ordered[i:]
		}
	}
	return ordered[:0]
}

// WriteJSONL streams the current snapshot as one JSON object per line —
// the ring.jsonl file inside a postmortem bundle. It returns how many
// entries were written.
func (f *FlightRecorder) WriteJSONL(w io.Writer) (int, error) {
	entries := f.Snapshot()
	enc := json.NewEncoder(w)
	for i, e := range entries {
		if err := enc.Encode(e); err != nil {
			return i, err
		}
	}
	return len(entries), nil
}

// ReadFlightJSONL parses a ring.jsonl stream back into entries, for
// cmd/postmortem. Blank lines are skipped; a malformed line is an
// error (a bundle is written atomically, so damage means the file is
// not the one the recorder wrote).
func ReadFlightJSONL(r io.Reader) ([]FlightEntry, error) {
	dec := json.NewDecoder(r)
	var out []FlightEntry
	for {
		var e FlightEntry
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, e)
	}
}
