package obs

import (
	"context"
	"log/slog"
	"time"
)

// Slog bridges the event stream to a standard library structured
// logger: run-level events (map brackets, phase ends, budget trips,
// degradations, arena stats) log at Info, per-tree chatter (solves,
// memo hits, replays, per-LUT detail) at Debug — so a logger at Info
// narrates a run in a dozen lines and -v opens the firehose. Like every
// sink it is passive, and slog.Logger is concurrency-safe, so the
// bridge needs no locking of its own.
type Slog struct {
	l *slog.Logger
}

// NewSlogObserver returns an Observer that logs events through l
// (slog.Default() when nil).
func NewSlogObserver(l *slog.Logger) *Slog {
	if l == nil {
		l = slog.Default()
	}
	return &Slog{l: l}
}

func eventLevel(k Kind) slog.Level {
	switch k {
	case KindMapStart, KindMapEnd, KindPhaseEnd, KindBudgetExhausted,
		KindTreeDegraded, KindArenaStats:
		return slog.LevelInfo
	default:
		return slog.LevelDebug
	}
}

// Observe logs one event, attaching only the fields its kind defines.
func (s *Slog) Observe(e Event) {
	lvl := eventLevel(e.Kind)
	if !s.l.Enabled(context.Background(), lvl) {
		return
	}
	attrs := make([]slog.Attr, 0, 6)
	add := func(a slog.Attr) { attrs = append(attrs, a) }
	switch e.Kind {
	case KindMapStart:
		add(slog.Int("k", e.K))
		add(slog.Int("nodes", e.N))
	case KindMapEnd:
		add(slog.Int("luts", e.Cost))
		add(slog.Int("depth", e.Depth))
		add(slog.Int("trees", e.N))
	case KindPhaseStart:
		add(slog.String("phase", e.Phase))
	case KindPhaseEnd:
		add(slog.String("phase", e.Phase))
		add(slog.Duration("wall", time.Duration(e.Units)))
	case KindTreeSolve:
		add(slog.String("tree", e.Tree))
		add(slog.Int64("units", e.Units))
		add(slog.Int("cost", e.Cost))
		if e.Dur > 0 {
			add(slog.Duration("dur", e.Dur))
		}
	case KindMemoHit, KindTreeDegraded:
		add(slog.String("tree", e.Tree))
		add(slog.Int("cost", e.Cost))
	case KindTemplateReplay, KindDupAccepted:
		add(slog.String("tree", e.Tree))
	case KindBudgetExhausted:
		add(slog.String("tree", e.Tree))
		add(slog.Int64("budget", e.Units))
	case KindLUT:
		add(slog.String("lut", e.Tree))
		add(slog.Int("inputs", e.N))
		add(slog.Int("level", e.Depth))
	case KindArenaStats:
		add(slog.Int("arenas", e.N))
		add(slog.Int64("slab_bytes", e.Units))
	}
	s.l.LogAttrs(context.Background(), lvl, e.Kind.String(), attrs...)
}
