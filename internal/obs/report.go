package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PhaseStat is the aggregated wall time of one pipeline phase.
type PhaseStat struct {
	Name string
	// Wall is the summed wall time of every pass through the phase
	// (cost-aware duplication maps the network more than once).
	Wall time.Duration
	// Count is how many times the phase ran.
	Count int
}

// Report is the aggregate view of one mapping run's event stream: what
// -stats prints and what benchjson embeds in BENCH_map.json. Build one
// with Aggregate or Collector.Report.
type Report struct {
	// K and Wall come from the map-start/map-end bracket; for a
	// cost-aware duplication run they span the outermost bracket.
	K    int
	Wall time.Duration

	// LUTs, Depth and Trees describe the final circuit (last map-end).
	LUTs  int
	Depth int
	Trees int

	// Phases lists pipeline phases in first-seen order with their
	// summed wall times.
	Phases []PhaseStat

	// Solves counts tree DP solves; WorkUnits sums their metered search
	// effort. MemoHits counts trees that reused another tree's solve,
	// TemplateReplays the subset that also replayed a recorded emission.
	Solves          int
	WorkUnits       int64
	MemoHits        int
	TemplateReplays int

	// SolveP50/P95/P99 are percentiles of the per-tree DP solve wall
	// times, over the solves that carried a duration (TimedSolves of
	// them). Zero when no solve was timed — tree-solve events emitted
	// before durations existed, or replayed from an old trace.
	SolveP50    time.Duration
	SolveP95    time.Duration
	SolveP99    time.Duration
	TimedSolves int

	// BudgetTrips counts solves that exhausted their search budget;
	// Degraded lists the trees remapped with bin packing as a result.
	BudgetTrips int
	Degraded    []string

	// DupAccepted counts duplications committed by the cost-aware
	// search (zero for plain Map).
	DupAccepted int

	// Cut-engine detail (zero for the tree engines). CutGates is the
	// gate count enumerated over, CutsKept the cuts retained across all
	// priority lists, CutsDominated the candidates removed by dominance
	// pruning, CutEvictions the non-dominated cuts dropped beyond the
	// priority bound, and AreaRounds the area-recovery iterations run.
	CutGates      int
	CutsKept      int64
	CutsDominated int
	CutEvictions  int64
	AreaRounds    int

	// ArenaCount and ArenaBytes describe the run's DP arena usage.
	ArenaCount int
	ArenaBytes int64

	// LUTInputHist histograms the emitted LUTs by used input count,
	// LUTDepthHist by level, TreeCostHist the mapped trees by their
	// per-tree LUT cost.
	LUTInputHist map[int]int
	LUTDepthHist map[int]int
	TreeCostHist map[int]int
}

// MemoHitRate returns hits / (hits + solves): the fraction of trees
// that skipped their DP solve. Zero when nothing was mapped.
func (r *Report) MemoHitRate() float64 {
	total := r.MemoHits + r.Solves
	if total == 0 {
		return 0
	}
	return float64(r.MemoHits) / float64(total)
}

// Aggregate folds an event stream into a Report.
func Aggregate(events []Event) *Report {
	r := &Report{
		LUTInputHist: make(map[int]int),
		LUTDepthHist: make(map[int]int),
		TreeCostHist: make(map[int]int),
	}
	phaseIdx := make(map[string]int)
	var start, end time.Time
	var solveDurs []time.Duration
	for _, e := range events {
		switch e.Kind {
		case KindMapStart:
			if start.IsZero() {
				start = e.Time
				r.K = e.K
			}
		case KindMapEnd:
			end = e.Time
			r.LUTs, r.Depth, r.Trees = e.Cost, e.Depth, e.N
		case KindPhaseEnd:
			i, ok := phaseIdx[e.Phase]
			if !ok {
				i = len(r.Phases)
				phaseIdx[e.Phase] = i
				r.Phases = append(r.Phases, PhaseStat{Name: e.Phase})
			}
			r.Phases[i].Wall += time.Duration(e.Units)
			r.Phases[i].Count++
		case KindTreeSolve:
			r.Solves++
			r.WorkUnits += e.Units
			r.TreeCostHist[e.Cost]++
			if e.Dur > 0 {
				solveDurs = append(solveDurs, e.Dur)
			}
		case KindMemoHit:
			r.MemoHits++
			r.TreeCostHist[e.Cost]++
		case KindTemplateReplay:
			r.TemplateReplays++
		case KindBudgetExhausted:
			r.BudgetTrips++
		case KindTreeDegraded:
			r.Degraded = append(r.Degraded, e.Tree)
			r.TreeCostHist[e.Cost]++
		case KindLUT:
			r.LUTInputHist[e.N]++
			r.LUTDepthHist[e.Depth]++
		case KindArenaStats:
			r.ArenaCount += e.N
			r.ArenaBytes += e.Units
		case KindDupAccepted:
			r.DupAccepted++
		case KindCutsEnumerated:
			r.CutGates += e.N
			r.CutsKept += e.Units
			r.CutsDominated += e.Cost
		case KindCutListEvict:
			r.CutEvictions += e.Units
		case KindAreaFlowRound:
			if e.N > r.AreaRounds {
				r.AreaRounds = e.N
			}
		}
	}
	if !start.IsZero() && !end.IsZero() {
		r.Wall = end.Sub(start)
	}
	if len(solveDurs) > 0 {
		sort.Slice(solveDurs, func(i, j int) bool { return solveDurs[i] < solveDurs[j] })
		r.TimedSolves = len(solveDurs)
		r.SolveP50 = percentile(solveDurs, 0.50)
		r.SolveP95 = percentile(solveDurs, 0.95)
		r.SolveP99 = percentile(solveDurs, 0.99)
	}
	return r
}

// percentile reads the p-quantile from a sorted slice using the
// nearest-rank method (the value at ceil(p*n), 1-indexed) — exact for
// the small populations a single run produces, and it always returns an
// observed value rather than an interpolation.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p * float64(len(sorted)))
	if float64(rank) < p*float64(len(sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Format renders the report as the human-readable block -stats prints.
func (r *Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mapping: %d LUTs (K=%d), depth %d, %d trees in %s\n",
		r.LUTs, r.K, r.Depth, r.Trees, r.Wall.Round(time.Microsecond))
	if len(r.Phases) > 0 {
		fmt.Fprintf(&sb, "phases:\n")
		for _, p := range r.Phases {
			fmt.Fprintf(&sb, "  %-12s %10s", p.Name, p.Wall.Round(time.Microsecond))
			if p.Count > 1 {
				fmt.Fprintf(&sb, "  (x%d)", p.Count)
			}
			sb.WriteByte('\n')
		}
	}
	fmt.Fprintf(&sb, "search: %d solves, %d work units", r.Solves, r.WorkUnits)
	if r.MemoHits+r.Solves > 0 {
		fmt.Fprintf(&sb, ", %d memo hits (%.1f%% hit rate, %d template replays)",
			r.MemoHits, 100*r.MemoHitRate(), r.TemplateReplays)
	}
	sb.WriteByte('\n')
	if r.TimedSolves > 0 {
		fmt.Fprintf(&sb, "solve times: p50 %s, p95 %s, p99 %s (%d timed)\n",
			r.SolveP50.Round(time.Microsecond), r.SolveP95.Round(time.Microsecond),
			r.SolveP99.Round(time.Microsecond), r.TimedSolves)
	}
	if r.BudgetTrips > 0 || len(r.Degraded) > 0 {
		fmt.Fprintf(&sb, "budget: %d trips, %d trees degraded to bin packing", r.BudgetTrips, len(r.Degraded))
		if n := len(r.Degraded); n > 0 {
			show := r.Degraded
			if n > 8 {
				show = show[:8]
			}
			fmt.Fprintf(&sb, " (%s", strings.Join(show, ", "))
			if n > 8 {
				fmt.Fprintf(&sb, ", +%d more", n-8)
			}
			sb.WriteString(")")
		}
		sb.WriteByte('\n')
	}
	if r.DupAccepted > 0 {
		fmt.Fprintf(&sb, "duplication: %d candidates accepted\n", r.DupAccepted)
	}
	if r.CutsKept > 0 {
		fmt.Fprintf(&sb, "cuts: %d kept over %d gates, %d dominated, %d evicted, %d area-flow rounds\n",
			r.CutsKept, r.CutGates, r.CutsDominated, r.CutEvictions, r.AreaRounds)
	}
	if r.ArenaCount > 0 {
		fmt.Fprintf(&sb, "arenas: %d checked out, %d slab bytes\n", r.ArenaCount, r.ArenaBytes)
	}
	if len(r.LUTInputHist) > 0 {
		fmt.Fprintf(&sb, "LUT inputs: %s\n", histLine(r.LUTInputHist))
	}
	if len(r.LUTDepthHist) > 0 {
		fmt.Fprintf(&sb, "LUT levels: %s\n", histLine(r.LUTDepthHist))
	}
	if len(r.TreeCostHist) > 0 {
		fmt.Fprintf(&sb, "tree costs: %s\n", histLine(r.TreeCostHist))
	}
	return sb.String()
}

// histLine renders a small histogram as "1:12 2:34 ..." in key order.
func histLine(h map[int]int) string {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%d:%d", k, h[k])
	}
	return strings.Join(parts, " ")
}
