package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped distributed tracing. A mapping request that crosses
// process boundaries — the resilient client retrying against a chortled
// fleet — is stitched together by one TraceID carried in the W3C
// traceparent HTTP header. Each process records Spans (named, timed
// operations with a parent link) into its own sink; cmd/traceview joins
// span streams from several processes into one Perfetto timeline.
//
// The same passivity contract as the event layer applies: tracing never
// perturbs the mapping, and the disabled path — a nil *ReqTrace — costs
// a nil check and allocates nothing (pinned by BenchmarkReqTraceOff).

// TraceID is a 16-byte trace identifier, rendered as 32 lowercase hex
// digits (the W3C trace-id field). The zero value is invalid.
type TraceID [16]byte

// SpanID is an 8-byte span identifier, rendered as 16 lowercase hex
// digits (the W3C parent-id field). The zero value means "no span".
type SpanID [8]byte

// NewTraceID returns a random trace identifier.
func NewTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// time-derived ID rather than propagating an error into every
		// request path.
		binary.BigEndian.PutUint64(t[:8], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint64(t[8:], uint64(time.Now().UnixNano()>>1|1))
	}
	if t.IsZero() {
		t[15] = 1
	}
	return t
}

// NewSpanID returns a random span identifier.
func NewSpanID() SpanID {
	var s SpanID
	if _, err := rand.Read(s[:]); err != nil {
		binary.BigEndian.PutUint64(s[:], uint64(time.Now().UnixNano()))
	}
	if s == (SpanID{}) {
		s[7] = 1
	}
	return s
}

// IsZero reports whether the trace ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the trace ID as 32 hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the span ID as 16 hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the span ID is the "no span" zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// MarshalText renders the trace ID as hex (JSON uses this too).
func (t TraceID) MarshalText() ([]byte, error) {
	buf := make([]byte, 32)
	hex.Encode(buf, t[:])
	return buf, nil
}

// UnmarshalText parses the 32-hex-digit form.
func (t *TraceID) UnmarshalText(b []byte) error {
	if len(b) != 32 {
		return fmt.Errorf("obs: trace ID %q: want 32 hex digits", b)
	}
	_, err := hex.Decode(t[:], b)
	return err
}

// MarshalText renders the span ID as hex.
func (s SpanID) MarshalText() ([]byte, error) {
	buf := make([]byte, 16)
	hex.Encode(buf, s[:])
	return buf, nil
}

// UnmarshalText parses the 16-hex-digit form.
func (s *SpanID) UnmarshalText(b []byte) error {
	if len(b) != 16 {
		return fmt.Errorf("obs: span ID %q: want 16 hex digits", b)
	}
	_, err := hex.Decode(s[:], b)
	return err
}

// TraceparentHeader is the HTTP header carrying trace context between
// the client and chortled, in the W3C Trace Context format.
const TraceparentHeader = "traceparent"

// FormatTraceparent renders trace context as a W3C traceparent value:
// version 00, the trace ID, the caller's span ID as parent, and the
// sampled flag set (everything this stack records is kept).
func FormatTraceparent(t TraceID, parent SpanID) string {
	return "00-" + t.String() + "-" + parent.String() + "-01"
}

// ParseTraceparent parses a traceparent header value. It accepts any
// version byte (per spec, unknown versions are parsed as version 00 if
// the shape matches) and reports ok=false for malformed or all-zero
// IDs — the caller then starts a fresh trace.
func ParseTraceparent(h string) (t TraceID, parent SpanID, ok bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return t, parent, false
	}
	if _, err := hex.Decode(t[:], []byte(h[3:35])); err != nil {
		return t, parent, false
	}
	if _, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil {
		return t, parent, false
	}
	if t.IsZero() || parent.IsZero() {
		return t, parent, false
	}
	return t, parent, true
}

// Span is one timed operation inside a trace: a name, a wall-clock
// interval, the process that performed it, and a parent link tying it
// into the request's span tree. Spans stream as single JSON lines (the
// SpanJSONL sink) and embed in access-log records.
type Span struct {
	Trace   TraceID           `json:"trace_id"`
	ID      SpanID            `json:"span_id"`
	Parent  SpanID            `json:"parent_id,omitempty"`
	Process string            `json:"process"`
	Name    string            `json:"name"`
	Start   time.Time         `json:"start"`
	End     time.Time         `json:"end"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's wall time.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// SpanRecorder receives finished spans. Implementations must tolerate
// concurrent calls.
type SpanRecorder interface {
	RecordSpan(Span)
}

// SpanJSONL streams every span as one JSON object per line — the
// client-side trace format cmd/traceview merges with server access
// logs. Errors are sticky and never surface into the request path.
type SpanJSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewSpanJSONL returns a recorder streaming to w.
func NewSpanJSONL(w io.Writer) *SpanJSONL {
	return &SpanJSONL{enc: json.NewEncoder(w)}
}

// RecordSpan writes the span as a JSON line.
func (j *SpanJSONL) RecordSpan(s Span) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(s)
}

// Err returns the first write error, if any.
func (j *SpanJSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// SpanCollector retains spans in memory, for tests and for building a
// timeline in-process.
type SpanCollector struct {
	mu    sync.Mutex
	spans []Span
}

// RecordSpan appends the span.
func (c *SpanCollector) RecordSpan(s Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// Spans returns a copy of everything recorded so far, in arrival order.
func (c *SpanCollector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}

// ReqTrace is a request-scoped trace recorder: it owns one trace's
// server- (or client-) side span tree plus a bounded Collector joining
// the mapper's event stream to the request. A nil *ReqTrace is the
// disabled state — every method is a nil check and allocates nothing,
// so the no-tracing serving path stays as cheap as the nil-observer
// mapping path.
//
// ReqTrace is safe for concurrent use; in practice one request's
// handler drives it sequentially while the parallel mapper emits into
// its event collector.
type ReqTrace struct {
	process string
	trace   TraceID
	root    Span // open root span; End stamped by Finish

	// spanSeq derives child span IDs: a per-trace random base XORed with
	// a counter, unique within the trace without per-span entropy.
	seed    uint64
	spanSeq atomic.Uint64

	mu       sync.Mutex
	spans    []Span
	maxSpans int
	dropped  int

	events *Collector
}

// NewReqTrace opens a request trace for one process. trace and parent
// come from an inbound traceparent header (zero trace starts a fresh
// one; zero parent means this process is the trace root). rootName
// names the implicit root span opened now and closed by Finish.
// maxSpans bounds the recorded span list and maxEvents the joined
// event collector — a runaway engine cannot grow a request's trace
// without bound.
func NewReqTrace(process, rootName string, trace TraceID, parent SpanID, maxSpans, maxEvents int) *ReqTrace {
	if trace.IsZero() {
		trace = NewTraceID()
	}
	if maxSpans <= 0 {
		maxSpans = 64
	}
	t := &ReqTrace{
		process:  process,
		trace:    trace,
		maxSpans: maxSpans,
		events:   NewBoundedCollector(maxEvents),
	}
	rootID := NewSpanID()
	t.seed = binary.BigEndian.Uint64(rootID[:])
	t.root = Span{
		Trace:   trace,
		ID:      rootID,
		Parent:  parent,
		Process: process,
		Name:    rootName,
		Start:   time.Now(),
	}
	return t
}

// TraceID returns the trace this recorder belongs to (zero when nil).
func (t *ReqTrace) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.trace
}

// RootSpanID returns the root span's ID (zero when nil).
func (t *ReqTrace) RootSpanID() SpanID {
	if t == nil {
		return SpanID{}
	}
	return t.root.ID
}

// Observer returns the bounded collector joining the mapper's event
// stream to this request — plug it into Options.Observer (through a
// Multi alongside process-wide sinks). Nil when tracing is off, which
// Multi skips.
func (t *ReqTrace) Observer() Observer {
	if t == nil {
		return nil
	}
	return t.events
}

// Events returns the joined mapper events collected so far.
func (t *ReqTrace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events.Events()
}

// newSpanID derives the next span ID in this trace.
func (t *ReqTrace) newSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], t.seed^(t.spanSeq.Add(1)*0x9e3779b97f4a7c15))
	if s.IsZero() {
		s[7] = 1
	}
	return s
}

// SpanScope is an open span handle returned by Start. The zero value
// (from a nil ReqTrace) is inert: End and Annotate on it do nothing.
type SpanScope struct {
	t     *ReqTrace
	id    SpanID
	par   SpanID
	name  string
	start time.Time
	attrs map[string]string
}

// Start opens a span under the root. On a nil ReqTrace it returns the
// inert zero scope without allocating.
func (t *ReqTrace) Start(name string) SpanScope {
	if t == nil {
		return SpanScope{}
	}
	return SpanScope{t: t, id: t.newSpanID(), par: t.root.ID, name: name, start: time.Now()}
}

// StartChild opens a span under an existing scope (which must belong
// to the same ReqTrace).
func (t *ReqTrace) StartChild(parent SpanScope, name string) SpanScope {
	if t == nil {
		return SpanScope{}
	}
	par := parent.id
	if par.IsZero() {
		par = t.root.ID
	}
	return SpanScope{t: t, id: t.newSpanID(), par: par, name: name, start: time.Now()}
}

// ID returns the scope's span ID (zero when inert).
func (s SpanScope) ID() SpanID { return s.id }

// Annotate attaches a key/value attribute to the span. Inert scopes
// drop it.
func (s *SpanScope) Annotate(key, value string) {
	if s.t == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// End closes the span and records it on the trace. Calling End on an
// inert scope does nothing.
func (s SpanScope) End() {
	if s.t == nil {
		return
	}
	s.t.record(Span{
		Trace: s.t.trace, ID: s.id, Parent: s.par, Process: s.t.process,
		Name: s.name, Start: s.start, End: time.Now(), Attrs: s.attrs,
	})
}

// record appends a finished span, honoring the bound.
func (t *ReqTrace) record(sp Span) {
	t.mu.Lock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// Dropped reports how many spans the bound discarded.
func (t *ReqTrace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// AnnotateRoot attaches an attribute to the root span.
func (t *ReqTrace) AnnotateRoot(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.root.Attrs == nil {
		t.root.Attrs = make(map[string]string, 4)
	}
	t.root.Attrs[key] = value
	t.mu.Unlock()
}

// Finish closes the root span and returns the complete span set: the
// root, every explicitly recorded span, and one synthesized
// "engine:<phase>" span per mapper phase captured by the joined event
// collector, parented under parentForPhases (the solve span, usually)
// so the engine's internal phases nest inside the request timeline.
// Safe to call once; spans recorded after Finish are dropped from the
// returned slice but Finish itself remains the single closing point.
func (t *ReqTrace) Finish(parentForPhases SpanID) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	root := t.root
	root.End = time.Now()
	out := make([]Span, 0, len(t.spans)+8)
	out = append(out, root)
	out = append(out, t.spans...)
	t.mu.Unlock()

	par := parentForPhases
	if par.IsZero() {
		par = root.ID
	}
	for _, e := range t.events.Events() {
		if e.Kind != KindPhaseEnd || e.Time.IsZero() {
			continue
		}
		out = append(out, Span{
			Trace: t.trace, ID: t.newSpanID(), Parent: par, Process: t.process,
			Name:  "engine:" + e.Phase,
			Start: e.Time.Add(-time.Duration(e.Units)), End: e.Time,
		})
	}
	return out
}

// AccessRecord is one structured access-log line from chortled: the
// request's trace ID, what was asked, how it ended, where the time
// went, and the span timeline. One JSON object per line; parse a log
// back with ReadTraceJSONL.
type AccessRecord struct {
	Time    time.Time `json:"time"`
	Trace   TraceID   `json:"trace_id"`
	Method  string    `json:"method,omitempty"`
	Path    string    `json:"path,omitempty"`
	Code    int       `json:"code"`
	Outcome string    `json:"outcome"`
	// Decision is the canonical overload-control reason behind a
	// refused or failed request (queue-full, codel, deadline-expired,
	// mem-valve, draining, panic); empty for ordinary outcomes.
	Decision string `json:"decision,omitempty"`
	// Circuit is the mapped network's model name. The value is
	// request-controlled — renderers must escape it.
	Circuit     string `json:"circuit,omitempty"`
	Engine      string `json:"engine,omitempty"`
	K           int    `json:"k,omitempty"`
	QueueNS     int64  `json:"queue_ns,omitempty"`
	SolveNS     int64  `json:"solve_ns,omitempty"`
	WriteNS     int64  `json:"write_ns,omitempty"`
	TotalNS     int64  `json:"total_ns"`
	LUTs        int    `json:"luts,omitempty"`
	CacheHits   int    `json:"cache_hits,omitempty"`
	CacheMisses int    `json:"cache_misses,omitempty"`
	Err         string `json:"err,omitempty"`
	Spans       []Span `json:"spans,omitempty"`
}

// OutcomeClass maps an HTTP status to the access log's outcome label:
// "2xx" for success, the literal code for the load-shedding and
// failure statuses operators alert on (429/503/504/500), "4xx" for
// other client errors, and "abandoned" when the client went away
// before any response was committed (code 0).
func OutcomeClass(code int) string {
	switch {
	case code == 0:
		return "abandoned"
	case code >= 200 && code < 300:
		return "2xx"
	case code == 429:
		return "429"
	case code == 500:
		return "500"
	case code == 503:
		return "503"
	case code == 504:
		return "504"
	case code >= 400 && code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}
