package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// decodeTrace parses a Chrome trace as the strict JSON array of records
// Perfetto expects.
func decodeTrace(t *testing.T, data []byte) []traceRecord {
	t.Helper()
	var recs []traceRecord
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&recs); err != nil {
		t.Fatalf("trace is not a JSON array of trace_event records: %v", err)
	}
	return recs
}

// checkTraceBalance is the acceptance-criteria structural check: within
// every (pid, tid) track, B/E records in stream order must form a
// properly nested stack — each E closes the most recently opened B with
// the same name, and no track ends with an open span.
func checkTraceBalance(t *testing.T, recs []traceRecord) {
	t.Helper()
	type track struct{ pid, tid int }
	stacks := map[track][]string{}
	lastTs := map[track]int64{}
	for i, r := range recs {
		switch r.Ph {
		case "B", "E", "i", "C", "M":
		default:
			t.Fatalf("record %d: unknown phase type %q", i, r.Ph)
		}
		if r.Ph != "B" && r.Ph != "E" {
			continue
		}
		k := track{r.Pid, r.Tid}
		if prev, ok := lastTs[k]; ok && r.Ts < prev {
			t.Fatalf("record %d: track %v goes backwards in time (%d after %d)", i, k, r.Ts, prev)
		}
		lastTs[k] = r.Ts
		st := stacks[k]
		switch r.Ph {
		case "B":
			stacks[k] = append(st, r.Name)
		case "E":
			if len(st) == 0 {
				t.Fatalf("record %d: E %q on track %v with no open span", i, r.Name, k)
			}
			if top := st[len(st)-1]; top != r.Name {
				t.Fatalf("record %d: E %q does not close the open span %q on track %v", i, r.Name, top, k)
			}
			stacks[k] = st[:len(st)-1]
		}
	}
	for k, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("track %v ends with open spans %v", k, st)
		}
	}
}

// syntheticRun builds a deliberately awkward stream: nested map
// brackets (dup-search shape), a phase sharing its start instant with
// the map bracket, and overlapping solves that need two lanes.
func syntheticRun(t0 time.Time) []Event {
	at := func(d time.Duration) time.Time { return t0.Add(d) }
	return []Event{
		{Kind: KindMapStart, Time: at(0), K: 4, N: 40},
		{Kind: KindPhaseStart, Time: at(0), Phase: "prepare"}, // same instant as map start
		{Kind: KindPhaseEnd, Time: at(1 * time.Millisecond), Phase: "prepare", Units: int64(time.Millisecond)},
		{Kind: KindPhaseStart, Time: at(1 * time.Millisecond), Phase: "solve"},
		// Two solves overlapping in wall time: forces a second lane.
		{Kind: KindTreeSolve, Time: at(3 * time.Millisecond), Tree: "a", Units: 20, Cost: 2, Dur: 2 * time.Millisecond},
		{Kind: KindTreeSolve, Time: at(4 * time.Millisecond), Tree: "b", Units: 30, Cost: 3, Dur: 2 * time.Millisecond},
		// A third solve that fits back into lane 0.
		{Kind: KindTreeSolve, Time: at(5 * time.Millisecond), Tree: "c", Units: 10, Cost: 1, Dur: time.Millisecond},
		{Kind: KindMemoHit, Time: at(5 * time.Millisecond), Tree: "d", Cost: 1},
		{Kind: KindPhaseEnd, Time: at(6 * time.Millisecond), Phase: "solve", Units: int64(5 * time.Millisecond)},
		// Inner dup-search map bracket.
		{Kind: KindPhaseStart, Time: at(6 * time.Millisecond), Phase: "dup-search"},
		{Kind: KindMapStart, Time: at(6 * time.Millisecond), K: 4, N: 40},
		{Kind: KindTreeDegraded, Time: at(7 * time.Millisecond), Tree: "e", Cost: 9},
		{Kind: KindMapEnd, Time: at(8 * time.Millisecond), Cost: 11, Depth: 3, N: 4},
		{Kind: KindDupAccepted, Time: at(8 * time.Millisecond), Tree: "e"},
		{Kind: KindPhaseEnd, Time: at(9 * time.Millisecond), Phase: "dup-search", Units: int64(3 * time.Millisecond)},
		{Kind: KindArenaStats, Time: at(9 * time.Millisecond), N: 2, Units: 4096},
		{Kind: KindMapEnd, Time: at(10 * time.Millisecond), Cost: 10, Depth: 3, N: 4},
	}
}

func TestChromeTraceBalanced(t *testing.T) {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, syntheticRun(t0)); err != nil {
		t.Fatal(err)
	}
	recs := decodeTrace(t, buf.Bytes())
	checkTraceBalance(t, recs)

	lanes := map[int]bool{}
	var maps, instants, counterRecs int
	names := map[string]bool{}
	for _, r := range recs {
		names[r.Name] = true
		switch {
		case r.Ph == "B" && r.Tid >= laneTid0:
			lanes[r.Tid] = true
		case r.Ph == "B" && strings.HasPrefix(r.Name, "map K="):
			maps++
		case r.Ph == "i":
			instants++
		case r.Ph == "C":
			counterRecs++
		}
	}
	if len(lanes) != 2 {
		t.Errorf("overlapping solves used %d lanes, want 2", len(lanes))
	}
	if maps != 2 {
		t.Errorf("map bracket spans = %d, want 2 (outer + dup-search inner)", maps)
	}
	if instants != 3 {
		t.Errorf("instant markers = %d, want 3 (memo-hit, degraded, dup-accepted)", instants)
	}
	if counterRecs != 1 {
		t.Errorf("counter records = %d, want 1 (arena bytes)", counterRecs)
	}
	for _, want := range []string{"prepare", "solve", "dup-search", "a", "b", "c", "process_name", "thread_name"} {
		if !names[want] {
			t.Errorf("trace missing record %q", want)
		}
	}
}

// TestChromeTraceRealRun exercises the exporter against an actual
// observed event stream shape rather than a synthetic one, via the
// tracer-level helpers: whatever the mapper emits must stay balanced.
func TestChromeTraceUnfinished(t *testing.T) {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	events := []Event{
		{Kind: KindMapStart, Time: t0, K: 4, N: 10},
		{Kind: KindPhaseStart, Time: t0.Add(time.Millisecond), Phase: "solve"},
		{Kind: KindTreeSolve, Time: t0.Add(2 * time.Millisecond), Tree: "a", Units: 5, Cost: 1, Dur: time.Millisecond},
		// Cancelled run: no PhaseEnd, no MapEnd.
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	recs := decodeTrace(t, buf.Bytes())
	checkTraceBalance(t, recs)
	if !strings.Contains(buf.String(), "unfinished") {
		t.Error("cancelled run's open brackets not marked unfinished")
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	recs := decodeTrace(t, buf.Bytes())
	checkTraceBalance(t, recs)
}

func TestReadJSONLRoundTrip(t *testing.T) {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	events := syntheticRun(t0)

	var jl bytes.Buffer
	sink := NewJSONL(&jl)
	for _, e := range events {
		sink.Observe(e)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&jl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i].Kind != events[i].Kind || !got[i].Time.Equal(events[i].Time) ||
			got[i].Tree != events[i].Tree || got[i].Dur != events[i].Dur {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got[i], events[i])
		}
	}

	// The replayed stream exports identically to the live one.
	var live, replay bytes.Buffer
	if err := WriteChromeTrace(&live, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&replay, got); err != nil {
		t.Fatal(err)
	}
	if live.String() != replay.String() {
		t.Error("replayed trace differs from live trace")
	}
}

func TestReadJSONLErrors(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"kind\":\"map-start\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line error = %v, want line 2 mention", err)
	}
	if evs, err := ReadJSONL(strings.NewReader("\n\n")); err != nil || len(evs) != 0 {
		t.Fatalf("blank-only input: %v, %d events", err, len(evs))
	}
}

func TestAssignLanes(t *testing.T) {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	at := func(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }
	spans := []span{
		{name: "a", start: at(0), end: at(4)},
		{name: "b", start: at(1), end: at(3)},
		{name: "c", start: at(2), end: at(5)}, // overlaps both a and b
		{name: "d", start: at(4), end: at(6)}, // reuses lane 0 after a
	}
	if n := assignLanes(spans); n != 3 {
		t.Fatalf("lanes = %d, want 3", n)
	}
	if spans[0].tid != laneTid0 || spans[3].tid != laneTid0 {
		t.Errorf("a/d should share lane 0: got %d and %d", spans[0].tid, spans[3].tid)
	}
	if spans[1].tid == spans[0].tid || spans[2].tid == spans[0].tid || spans[2].tid == spans[1].tid {
		t.Errorf("overlapping spans share a lane: %d %d %d", spans[0].tid, spans[1].tid, spans[2].tid)
	}
}
