// Package obs is the mapper's observability layer: a zero-dependency
// event stream threaded through the mapping pipeline via
// core.Options.Observer. The pipeline emits structured Events — phase
// boundaries, per-tree solves with their search effort, memo hits and
// misses, budget trips and degradations, arena statistics — to a
// pluggable Observer sink. Shipped sinks: the nil Observer (the no-op
// default; the hot path guards every emission with a nil check and
// allocates nothing), Collector (in-memory, aggregated into a Report),
// and JSONL (a streaming trace writer).
//
// The contract every instrumentation site honors: observability never
// perturbs the mapping. Sinks only receive data; the emitted circuit is
// byte-identical with or without an observer attached, in every
// Parallel x Memoize x Budget mode. Sinks must be safe for concurrent
// use — the parallel pipeline emits from worker goroutines — and should
// return quickly; a slow sink slows the mapper but cannot change its
// output.
package obs

import (
	"fmt"
	"time"
)

// Kind identifies what an Event records.
type Kind uint8

const (
	// KindMapStart opens a mapping run. K is the LUT input count,
	// N the network's node count.
	KindMapStart Kind = iota
	// KindMapEnd closes a mapping run. Cost is the final LUT count,
	// Depth the circuit depth, N the tree count.
	KindMapEnd
	// KindPhaseStart opens a pipeline phase (Phase names it).
	KindPhaseStart
	// KindPhaseEnd closes a phase; Units is its wall time in
	// nanoseconds, so a report needs no start/end pairing.
	KindPhaseEnd
	// KindTreeSolve records one tree DP solve: Tree is the root name,
	// Units the work units the governor metered, Cost the tree's
	// optimal LUT count.
	KindTreeSolve
	// KindMemoHit records a tree whose DP was reused from a
	// structurally identical tree solved earlier in the same run.
	// Cost is the shared solve's LUT count.
	KindMemoHit
	// KindTemplateReplay records a tree emitted by replaying a recorded
	// template (the fast half of a memo hit).
	KindTemplateReplay
	// KindBudgetExhausted records a solve that tripped its search
	// budget; Units carries the budget's work-unit limit.
	KindBudgetExhausted
	// KindTreeDegraded records a tree remapped with the bin-packing
	// strategy after budget exhaustion; Cost is the bin-packed count.
	KindTreeDegraded
	// KindLUT describes one emitted lookup table at the end of the run:
	// Tree is the LUT name, N its used input count, Depth its level.
	KindLUT
	// KindArenaStats reports the run's DP arena usage: N arenas were
	// checked out, holding Units bytes of slab memory.
	KindArenaStats
	// KindDupAccepted records a profitable duplication committed by the
	// cost-aware duplication search; Tree is the duplicated node.
	KindDupAccepted
	// KindCutsEnumerated closes the cut engine's enumeration pass:
	// N is the gate count enumerated over, Units the cuts kept across
	// all priority lists, Cost the candidates discarded by signature
	// dominance pruning.
	KindCutsEnumerated
	// KindCutListEvict records priority-list evictions: Units is the
	// number of non-dominated candidate cuts dropped beyond the
	// CutsPerNode bound during enumeration.
	KindCutListEvict
	// KindAreaFlowRound closes one area-recovery iteration of the cut
	// engine's cover selection: N is the round number (1-based), Cost
	// the cover size (LUT count) after the round.
	KindAreaFlowRound
)

var kindNames = [...]string{
	KindMapStart:        "map-start",
	KindMapEnd:          "map-end",
	KindPhaseStart:      "phase-start",
	KindPhaseEnd:        "phase-end",
	KindTreeSolve:       "tree-solve",
	KindMemoHit:         "memo-hit",
	KindTemplateReplay:  "template-replay",
	KindBudgetExhausted: "budget-exhausted",
	KindTreeDegraded:    "tree-degraded",
	KindLUT:             "lut",
	KindArenaStats:      "arena-stats",
	KindDupAccepted:     "dup-accepted",
	KindCutsEnumerated:  "cuts-enumerated",
	KindCutListEvict:    "cut-evictions",
	KindAreaFlowRound:   "area-flow-round",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its name, keeping JSONL traces
// readable without a decoder ring.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts the name form written by MarshalJSON.
func (k *Kind) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	for i, name := range kindNames {
		if name == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one observation from the mapping pipeline. The struct is
// flat and field meanings are per-Kind (documented on the constants),
// so events stream as single JSON lines and pass through channels and
// slices without indirection.
type Event struct {
	Kind  Kind      `json:"kind"`
	Time  time.Time `json:"time"`
	Phase string    `json:"phase,omitempty"`
	Tree  string    `json:"tree,omitempty"`
	K     int       `json:"k,omitempty"`
	Units int64     `json:"units,omitempty"`
	Cost  int       `json:"cost,omitempty"`
	Depth int       `json:"depth,omitempty"`
	N     int       `json:"n,omitempty"`
	// Dur is the wall time of the work the event closes: a tree-solve
	// carries its DP solve duration (Time is the solve's end). Zero for
	// kinds that record an instant, and for solves observed on paths
	// that do not meter wall time.
	Dur time.Duration `json:"dur,omitempty"`
}

// Observer receives pipeline events. Implementations must tolerate
// concurrent calls (worker goroutines emit during the parallel DP
// prepass) and must not retain the Event beyond the call unless they
// copy it — it is delivered by value, so retaining a copy is the
// natural thing anyway.
type Observer interface {
	Observe(Event)
}

// Func adapts a plain function to the Observer interface.
type Func func(Event)

// Observe calls f.
func (f Func) Observe(e Event) { f(e) }

// Multi fans every event out to each sink in order.
type Multi []Observer

// Observe delivers e to every non-nil sink.
func (m Multi) Observe(e Event) {
	for _, o := range m {
		if o != nil {
			o.Observe(e)
		}
	}
}
