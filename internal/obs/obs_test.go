package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKindRoundTrip(t *testing.T) {
	for k := KindMapStart; k <= KindDupAccepted; k++ {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		if !strings.Contains(string(data), k.String()) {
			t.Errorf("kind %v marshaled to %s", k, data)
		}
		var back Kind
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != k {
			t.Errorf("round trip %v -> %v", k, back)
		}
	}
	var bad Kind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &bad); err == nil {
		t.Error("unknown kind name unmarshaled without error")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Observe(Event{Kind: KindTreeSolve, Units: 1})
			}
		}()
	}
	wg.Wait()
	if got := c.Len(); got != workers*per {
		t.Fatalf("collected %d events, want %d", got, workers*per)
	}
	r := c.Report()
	if r.Solves != workers*per || r.WorkUnits != workers*per {
		t.Fatalf("report solves=%d units=%d, want %d", r.Solves, r.WorkUnits, workers*per)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset left events behind")
	}
}

func TestJSONLStream(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Observe(Event{Kind: KindMapStart, K: 4, N: 10})
	j.Observe(Event{Kind: KindTreeSolve, Tree: "n1", Units: 42, Cost: 3})
	j.Observe(Event{Kind: KindMapEnd, Cost: 7, Depth: 2, N: 3})
	if err := j.Err(); err != nil {
		t.Fatalf("write error: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
	}
	if lines != 3 {
		t.Fatalf("wrote %d lines, want 3", lines)
	}
}

type failWriter struct {
	n     int // successful writes remaining
	calls int // total Write calls observed
}

func (f *failWriter) Write(p []byte) (int, error) {
	f.calls++
	if f.n <= 0 {
		return 0, errWrite
	}
	f.n--
	return len(p), nil
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "disk full" }

// TestJSONLStickyError pins the sink's failure contract: the first
// write error is sticky in Err, identity-preserved for errors.Is-style
// checks, and the sink goes quiet — the broken writer is never touched
// again, so a full disk cannot slow the rest of the run.
func TestJSONLStickyError(t *testing.T) {
	fw := &failWriter{n: 1}
	j := NewJSONL(fw)
	j.Observe(Event{Kind: KindMapStart})
	if err := j.Err(); err != nil {
		t.Fatalf("first write failed unexpectedly: %v", err)
	}
	j.Observe(Event{Kind: KindMapEnd}) // fails
	callsAtFailure := fw.calls
	j.Observe(Event{Kind: KindMapEnd}) // silently dropped
	j.Observe(Event{Kind: KindTreeSolve, Tree: "a"})
	if err := j.Err(); err != errWrite {
		t.Fatalf("Err() = %v, want the writer's own error", err)
	}
	if fw.calls != callsAtFailure {
		t.Fatalf("sink touched the writer %d more times after the error", fw.calls-callsAtFailure)
	}
}

func TestMultiAndFunc(t *testing.T) {
	var got []Kind
	f := Func(func(e Event) { got = append(got, e.Kind) })
	var c Collector
	m := Multi{f, nil, &c}
	m.Observe(Event{Kind: KindMapStart})
	m.Observe(Event{Kind: KindMapEnd})
	if len(got) != 2 || c.Len() != 2 {
		t.Fatalf("fan-out reached func %d times, collector %d times", len(got), c.Len())
	}
}

func TestAggregate(t *testing.T) {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	events := []Event{
		{Kind: KindMapStart, Time: t0, K: 4, N: 100},
		{Kind: KindPhaseEnd, Phase: "forest", Units: int64(2 * time.Millisecond)},
		{Kind: KindPhaseEnd, Phase: "solve", Units: int64(5 * time.Millisecond)},
		{Kind: KindPhaseEnd, Phase: "solve", Units: int64(3 * time.Millisecond)},
		{Kind: KindTreeSolve, Tree: "a", Units: 10, Cost: 2},
		{Kind: KindTreeSolve, Tree: "b", Units: 30, Cost: 2},
		{Kind: KindMemoHit, Tree: "c", Cost: 2},
		{Kind: KindTemplateReplay, Tree: "c"},
		{Kind: KindBudgetExhausted, Tree: "d", Units: 100},
		{Kind: KindTreeDegraded, Tree: "d", Cost: 5},
		{Kind: KindLUT, Tree: "a$l1", N: 4, Depth: 1},
		{Kind: KindLUT, Tree: "a$l2", N: 3, Depth: 2},
		{Kind: KindArenaStats, N: 2, Units: 4096},
		{Kind: KindDupAccepted, Tree: "g"},
		{Kind: KindMapEnd, Time: t0.Add(10 * time.Millisecond), Cost: 9, Depth: 2, N: 4},
	}
	r := Aggregate(events)
	if r.K != 4 || r.LUTs != 9 || r.Depth != 2 || r.Trees != 4 {
		t.Fatalf("totals wrong: %+v", r)
	}
	if r.Wall != 10*time.Millisecond {
		t.Errorf("wall = %s, want 10ms", r.Wall)
	}
	if len(r.Phases) != 2 || r.Phases[1].Name != "solve" ||
		r.Phases[1].Wall != 8*time.Millisecond || r.Phases[1].Count != 2 {
		t.Errorf("phase aggregation wrong: %+v", r.Phases)
	}
	if r.Solves != 2 || r.WorkUnits != 40 {
		t.Errorf("solves=%d units=%d", r.Solves, r.WorkUnits)
	}
	if r.MemoHits != 1 || r.TemplateReplays != 1 {
		t.Errorf("memo hits=%d replays=%d", r.MemoHits, r.TemplateReplays)
	}
	if want := 1.0 / 3; r.MemoHitRate() != want {
		t.Errorf("hit rate %f, want %f", r.MemoHitRate(), want)
	}
	if r.BudgetTrips != 1 || len(r.Degraded) != 1 || r.Degraded[0] != "d" {
		t.Errorf("budget detail wrong: trips=%d degraded=%v", r.BudgetTrips, r.Degraded)
	}
	if r.TreeCostHist[2] != 3 || r.TreeCostHist[5] != 1 {
		t.Errorf("tree cost hist %v", r.TreeCostHist)
	}
	if r.LUTInputHist[4] != 1 || r.LUTDepthHist[2] != 1 {
		t.Errorf("LUT hists %v %v", r.LUTInputHist, r.LUTDepthHist)
	}
	if r.ArenaCount != 2 || r.ArenaBytes != 4096 || r.DupAccepted != 1 {
		t.Errorf("arena/dup wrong: %+v", r)
	}

	text := r.Format()
	for _, want := range []string{"9 LUTs (K=4)", "forest", "solve", "memo hits", "degraded", "tree costs"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q:\n%s", want, text)
		}
	}
}

func TestMemoHitRateEmpty(t *testing.T) {
	if r := Aggregate(nil); r.MemoHitRate() != 0 {
		t.Fatal("empty report should have zero hit rate")
	}
}

// TestSolvePercentiles checks the p50/p95/p99 aggregation over timed
// solves: 100 solves with durations 1ms..100ms give exact
// nearest-rank percentiles, and Format surfaces them.
func TestSolvePercentiles(t *testing.T) {
	var events []Event
	// Shuffle-ish order: percentiles must not depend on arrival order.
	for i := 99; i >= 0; i-- {
		events = append(events, Event{
			Kind: KindTreeSolve, Tree: "t", Units: 1,
			Dur: time.Duration(i+1) * time.Millisecond,
		})
	}
	r := Aggregate(events)
	if r.TimedSolves != 100 {
		t.Fatalf("timed solves = %d, want 100", r.TimedSolves)
	}
	if r.SolveP50 != 50*time.Millisecond {
		t.Errorf("p50 = %s, want 50ms", r.SolveP50)
	}
	if r.SolveP95 != 95*time.Millisecond {
		t.Errorf("p95 = %s, want 95ms", r.SolveP95)
	}
	if r.SolveP99 != 99*time.Millisecond {
		t.Errorf("p99 = %s, want 99ms", r.SolveP99)
	}
	if text := r.Format(); !strings.Contains(text, "solve times: p50 50ms, p95 95ms, p99 99ms (100 timed)") {
		t.Errorf("Format() missing percentile line:\n%s", text)
	}

	// Untimed solves (Dur zero, e.g. replayed from an old trace) leave
	// the percentiles zero and the line out of Format.
	r = Aggregate([]Event{{Kind: KindTreeSolve, Tree: "t"}})
	if r.TimedSolves != 0 || r.SolveP50 != 0 {
		t.Errorf("untimed solves produced percentiles: %+v", r)
	}
	if strings.Contains(r.Format(), "solve times") {
		t.Error("Format() printed percentiles with no timed solves")
	}
	// Single observation: every percentile is that observation.
	r = Aggregate([]Event{{Kind: KindTreeSolve, Dur: 7 * time.Millisecond}})
	if r.SolveP50 != 7*time.Millisecond || r.SolveP99 != 7*time.Millisecond {
		t.Errorf("single-solve percentiles wrong: %+v", r)
	}
}

// TestBoundedCollector exercises the ring: only the newest cap events
// survive, in order, with the eviction count reported.
func TestBoundedCollector(t *testing.T) {
	c := NewBoundedCollector(4)
	for i := 0; i < 10; i++ {
		c.Observe(Event{Kind: KindTreeSolve, Units: int64(i)})
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4", c.Len())
	}
	if c.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", c.Dropped())
	}
	got := c.Events()
	for i, e := range got {
		if want := int64(6 + i); e.Units != want {
			t.Fatalf("event %d has units %d, want %d (events %v)", i, e.Units, want, got)
		}
	}
	c.Reset()
	if c.Len() != 0 || c.Dropped() != 0 {
		t.Fatal("Reset did not clear the ring")
	}
	// The bound survives a Reset.
	for i := 0; i < 5; i++ {
		c.Observe(Event{Units: int64(i)})
	}
	if c.Len() != 4 || c.Dropped() != 1 {
		t.Fatalf("after reset: len=%d dropped=%d, want 4/1", c.Len(), c.Dropped())
	}
}

// TestBoundedCollectorSetCapacity covers late bounding: shrinking an
// over-full collector drops the oldest events immediately.
func TestBoundedCollectorSetCapacity(t *testing.T) {
	var c Collector
	for i := 0; i < 8; i++ {
		c.Observe(Event{Units: int64(i)})
	}
	c.SetCapacity(3)
	if c.Len() != 3 || c.Dropped() != 5 {
		t.Fatalf("after shrink: len=%d dropped=%d, want 3/5", c.Len(), c.Dropped())
	}
	got := c.Events()
	if got[0].Units != 5 || got[2].Units != 7 {
		t.Fatalf("shrink kept wrong events: %v", got)
	}
	c.Observe(Event{Units: 8})
	got = c.Events()
	if len(got) != 3 || got[0].Units != 6 || got[2].Units != 8 {
		t.Fatalf("ring after shrink misbehaved: %v", got)
	}
	// Unbounding stops eviction.
	c.SetCapacity(0)
	for i := 9; i < 20; i++ {
		c.Observe(Event{Units: int64(i)})
	}
	if c.Len() != 14 {
		t.Fatalf("unbounded len = %d, want 14", c.Len())
	}
}

// TestBoundedCollectorConcurrent is the race check for the ring path.
func TestBoundedCollectorConcurrent(t *testing.T) {
	c := NewBoundedCollector(64)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Observe(Event{Kind: KindTreeSolve, Units: 1})
			}
		}()
	}
	wg.Wait()
	if c.Len() != 64 {
		t.Fatalf("len = %d, want 64", c.Len())
	}
	if got := c.Dropped(); got != workers*per-64 {
		t.Fatalf("dropped = %d, want %d", got, workers*per-64)
	}
}
