package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Collector is an in-memory sink: it appends every event to a slice
// under a mutex. Aggregate a finished run with Report. One Collector
// should observe one mapping run at a time; concurrent emission from
// the run's own worker goroutines is fine, interleaving two runs makes
// the report meaningless (but is still memory-safe).
//
// The zero value retains every event. A capacity set with
// NewBoundedCollector (or SetCapacity before the run) turns the store
// into a ring that keeps only the newest cap events, so tracing a huge
// suite cannot grow memory without bound; Dropped counts what the ring
// overwrote.
type Collector struct {
	mu     sync.Mutex
	events []Event
	cap    int // 0 = unbounded
	head   int // ring start when len(events) == cap
	// dropped counts events overwritten by the ring. It is atomic, not
	// mutex-guarded, so Dropped can be polled lock-free while worker
	// goroutines are still emitting (a progress display reading it must
	// not contend with the mapping's hot path).
	dropped atomic.Int64
}

// NewBoundedCollector returns a Collector that retains at most cap
// events, evicting the oldest first. cap <= 0 means unbounded — the
// same behavior as a zero-value Collector.
func NewBoundedCollector(cap int) *Collector {
	if cap < 0 {
		cap = 0
	}
	return &Collector{cap: cap}
}

// SetCapacity bounds the collector to the newest cap events (<= 0 for
// unbounded). Call it before the run it observes: shrinking below the
// current length discards oldest events immediately.
func (c *Collector) SetCapacity(cap int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cap < 0 {
		cap = 0
	}
	if cap > 0 && len(c.events) > cap {
		ordered := c.orderedLocked()
		drop := len(ordered) - cap
		c.dropped.Add(int64(drop))
		c.events = append([]Event(nil), ordered[drop:]...)
		c.head = 0
	}
	c.cap = cap
}

// Observe appends the event, evicting the oldest one when the
// collector is bounded and full.
func (c *Collector) Observe(e Event) {
	c.mu.Lock()
	if c.cap > 0 && len(c.events) == c.cap {
		c.events[c.head] = e
		c.head++
		if c.head == c.cap {
			c.head = 0
		}
		c.dropped.Add(1)
	} else {
		c.events = append(c.events, e)
	}
	c.mu.Unlock()
}

// orderedLocked returns the events oldest-first without copying when
// the ring has not wrapped. Callers must hold mu and copy the result
// if it escapes the lock.
func (c *Collector) orderedLocked() []Event {
	if c.head == 0 {
		return c.events
	}
	out := make([]Event, 0, len(c.events))
	out = append(out, c.events[c.head:]...)
	out = append(out, c.events[:c.head]...)
	return out
}

// Events returns a copy of everything retained so far, oldest first.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.orderedLocked()...)
}

// Len returns the number of events retained so far.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Dropped returns how many events a bounded collector has evicted. It
// is safe to call concurrently with Observe, without blocking emitters.
func (c *Collector) Dropped() int64 {
	return c.dropped.Load()
}

// Reset discards all collected events and the dropped count, readying
// the Collector for another run. The capacity bound is kept.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = nil
	c.head = 0
	c.dropped.Store(0)
	c.mu.Unlock()
}

// Report aggregates the collected events (see Aggregate).
func (c *Collector) Report() *Report {
	return Aggregate(c.Events())
}

// JSONL streams every event as one JSON object per line — the mapper's
// machine-readable trace format (cmd/chortle -trace). Writes are
// serialized by a mutex; errors are sticky and reported by Err, never
// surfaced into the mapping (a failing trace file cannot fail a map).
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink streaming to w. The caller owns w and any
// buffering/closing it needs.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Observe writes the event as a JSON line. After the first write error
// the sink goes quiet and Err reports the error.
func (j *JSONL) Observe(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(e)
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
