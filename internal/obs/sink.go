package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Collector is an in-memory sink: it appends every event to a slice
// under a mutex. Aggregate a finished run with Report. One Collector
// should observe one mapping run at a time; concurrent emission from
// the run's own worker goroutines is fine, interleaving two runs makes
// the report meaningless (but is still memory-safe).
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Observe appends the event.
func (c *Collector) Observe(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of everything observed so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len returns the number of events observed so far.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Reset discards all collected events, readying the Collector for
// another run.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = nil
	c.mu.Unlock()
}

// Report aggregates the collected events (see Aggregate).
func (c *Collector) Report() *Report {
	return Aggregate(c.Events())
}

// JSONL streams every event as one JSON object per line — the mapper's
// machine-readable trace format (cmd/chortle -trace). Writes are
// serialized by a mutex; errors are sticky and reported by Err, never
// surfaced into the mapping (a failing trace file cannot fail a map).
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink streaming to w. The caller owns w and any
// buffering/closing it needs.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Observe writes the event as a JSON line. After the first write error
// the sink goes quiet and Err reports the error.
func (j *JSONL) Observe(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(e)
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
