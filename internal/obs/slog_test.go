package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSlogObserverLevels(t *testing.T) {
	var info, debug bytes.Buffer
	infoSink := NewSlogObserver(slog.New(slog.NewTextHandler(&info, &slog.HandlerOptions{Level: slog.LevelInfo})))
	debugSink := NewSlogObserver(slog.New(slog.NewTextHandler(&debug, &slog.HandlerOptions{Level: slog.LevelDebug})))
	events := []Event{
		{Kind: KindMapStart, K: 4, N: 100},
		{Kind: KindPhaseEnd, Phase: "solve", Units: int64(3 * time.Millisecond)},
		{Kind: KindTreeSolve, Tree: "t1", Units: 42, Cost: 3, Dur: time.Millisecond},
		{Kind: KindMemoHit, Tree: "t2", Cost: 3},
		{Kind: KindLUT, Tree: "l1", N: 4, Depth: 2},
		{Kind: KindMapEnd, Cost: 12, Depth: 3, N: 5},
	}
	for _, e := range events {
		infoSink.Observe(e)
		debugSink.Observe(e)
	}
	for _, want := range []string{"msg=map-start", "msg=phase-end", "msg=map-end", "k=4", "phase=solve"} {
		if !strings.Contains(info.String(), want) {
			t.Errorf("info log missing %q:\n%s", want, info.String())
		}
	}
	for _, chatty := range []string{"msg=tree-solve", "msg=memo-hit", "msg=lut"} {
		if strings.Contains(info.String(), chatty) {
			t.Errorf("info log leaked debug-level event %q", chatty)
		}
		if !strings.Contains(debug.String(), chatty) {
			t.Errorf("debug log missing %q", chatty)
		}
	}
	if !strings.Contains(debug.String(), "tree=t1") || !strings.Contains(debug.String(), "units=42") {
		t.Errorf("tree-solve attrs missing:\n%s", debug.String())
	}
}

func TestSlogObserverJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewSlogObserver(slog.New(slog.NewJSONHandler(&buf, nil)))
	s.Observe(Event{Kind: KindMapEnd, Cost: 7, Depth: 2, N: 3})
	out := buf.String()
	for _, want := range []string{`"msg":"map-end"`, `"luts":7`, `"depth":2`, `"trees":3`} {
		if !strings.Contains(out, want) {
			t.Errorf("json log missing %s: %s", want, out)
		}
	}
}

// TestCollectorDroppedConcurrent hammers a bounded collector from many
// goroutines while another polls Dropped/Len/Events — the scenario the
// atomic drop counter exists for. Run under -race this pins the absence
// of data races; the final count check pins that no increment is lost.
func TestCollectorDroppedConcurrent(t *testing.T) {
	const (
		workers = 8
		each    = 2000
		bound   = 64
	)
	c := NewBoundedCollector(bound)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Dropped()
				_ = c.Len()
				_ = c.Events()
			}
		}
	}()
	var emit sync.WaitGroup
	for w := 0; w < workers; w++ {
		emit.Add(1)
		go func() {
			defer emit.Done()
			for i := 0; i < each; i++ {
				c.Observe(Event{Kind: KindTreeSolve, Units: int64(i)})
			}
		}()
	}
	emit.Wait()
	close(stop)
	wg.Wait()
	if got, want := c.Dropped(), int64(workers*each-bound); got != want {
		t.Fatalf("Dropped() = %d, want %d", got, want)
	}
	if c.Len() != bound {
		t.Fatalf("Len() = %d, want %d", c.Len(), bound)
	}
}
