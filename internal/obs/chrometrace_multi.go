package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Multi-process Chrome trace export: joins span streams from several
// processes — the resilient client's attempt spans and chortled's
// server-side request spans, stitched by a shared trace ID — into one
// trace_event JSON array. Each process becomes a Perfetto process
// (pid); each trace within a process gets its own thread track (tid)
// named by the trace ID prefix, so a retried request reads as parallel
// tracks under the client and server processes. Spans are emitted as
// complete ("X") records, which tolerate the overlapping siblings a
// hedged request produces — no B/E stack discipline required.

// ReadTraceJSONL parses a mixed JSONL stream where each line is one of
// the stack's three trace shapes: an Event (cmd/chortle -trace), a
// Span (client -server-trace), or an AccessRecord (chortled
// -access-log, whose embedded spans are flattened into the span list).
// Blank lines are skipped; an unrecognizable line fails with its line
// number.
func ReadTraceJSONL(r io.Reader) ([]Event, []Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		events []Event
		spans  []Span
	)
	for n := 1; sc.Scan(); n++ {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		// Sniff the shape by its discriminating field: spans carry
		// span_id, access records carry outcome, events carry kind.
		var probe struct {
			SpanID  *string `json:"span_id"`
			Outcome *string `json:"outcome"`
			Kind    *string `json:"kind"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, nil, fmt.Errorf("obs: trace line %d: %w", n, err)
		}
		switch {
		case probe.SpanID != nil:
			var s Span
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, nil, fmt.Errorf("obs: trace line %d: %w", n, err)
			}
			spans = append(spans, s)
		case probe.Outcome != nil:
			var rec AccessRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, nil, fmt.Errorf("obs: trace line %d: %w", n, err)
			}
			spans = append(spans, rec.Spans...)
		case probe.Kind != nil:
			var e Event
			if err := json.Unmarshal(line, &e); err != nil {
				return nil, nil, fmt.Errorf("obs: trace line %d: %w", n, err)
			}
			events = append(events, e)
		default:
			return nil, nil, fmt.Errorf("obs: trace line %d: not an event, span, or access record", n)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return events, spans, nil
}

// WriteChromeTraceMulti converts a multi-process span set (plus any
// loose mapper events) into a Chrome trace_event JSON array. Processes
// are assigned pids in sorted name order; within a process each trace
// ID gets one thread track. Mapper events, if present, are rendered on
// one extra "engine events" process: phase-end events become spans,
// everything else an instant marker.
func WriteChromeTraceMulti(w io.Writer, spans []Span, events []Event) error {
	kept := make([]Span, 0, len(spans))
	for _, s := range spans {
		if !s.Start.IsZero() && !s.End.Before(s.Start) {
			kept = append(kept, s)
		}
	}
	evs := make([]Event, 0, len(events))
	for _, e := range events {
		if !e.Time.IsZero() {
			evs = append(evs, e)
		}
	}
	if len(kept) == 0 && len(evs) == 0 {
		_, err := io.WriteString(w, "[]\n")
		return err
	}

	// Common origin across every process so the tracks align.
	var origin time.Time
	for _, s := range kept {
		if origin.IsZero() || s.Start.Before(origin) {
			origin = s.Start
		}
	}
	for _, e := range evs {
		start := e.Time
		if e.Kind == KindPhaseEnd {
			start = e.Time.Add(-time.Duration(e.Units))
		}
		if origin.IsZero() || start.Before(origin) {
			origin = start
		}
	}
	us := func(t time.Time) int64 { return t.Sub(origin).Microseconds() }

	procs := map[string][]Span{}
	var procNames []string
	for _, s := range kept {
		name := s.Process
		if name == "" {
			name = "unknown"
		}
		if _, seen := procs[name]; !seen {
			procNames = append(procNames, name)
		}
		procs[name] = append(procs[name], s)
	}
	sort.Strings(procNames)

	var records []traceRecord
	for pi, name := range procNames {
		pid := pi + 1
		records = append(records, traceRecord{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
		// One thread track per trace ID, in first-span order so the
		// earliest request sits on top.
		ps := procs[name]
		sort.SliceStable(ps, func(i, j int) bool { return ps[i].Start.Before(ps[j].Start) })
		traceTid := map[TraceID]int{}
		for _, s := range ps {
			tid, seen := traceTid[s.Trace]
			if !seen {
				tid = len(traceTid)
				traceTid[s.Trace] = tid
				records = append(records, traceRecord{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": "trace " + s.Trace.String()[:8]},
				})
			}
			dur := s.End.Sub(s.Start).Microseconds()
			if dur < 1 {
				dur = 1 // sub-µs spans stay visible
			}
			args := map[string]any{
				"trace_id": s.Trace.String(),
				"span_id":  s.ID.String(),
			}
			if !s.Parent.IsZero() {
				args["parent_id"] = s.Parent.String()
			}
			for k, v := range s.Attrs {
				args[k] = v
			}
			records = append(records, completeRecord(s.Name, us(s.Start), dur, pid, tid, args))
		}
	}

	if len(evs) > 0 {
		pid := len(procNames) + 1
		records = append(records, traceRecord{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": "engine events"},
		})
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
		for _, e := range evs {
			switch e.Kind {
			case KindPhaseEnd:
				records = append(records, completeRecord(
					e.Phase, us(e.Time.Add(-time.Duration(e.Units))),
					max64(time.Duration(e.Units).Microseconds(), 1),
					pid, 0, map[string]any{"wall_ns": e.Units}))
			case KindLUT:
				// Per-LUT detail drowns the viewer; skip it here as the
				// single-process exporter does.
			default:
				records = append(records, traceRecord{
					Name: e.Kind.String(), Cat: "mark", Ph: "i", Ts: us(e.Time),
					Pid: pid, Tid: 0, S: "t",
				})
			}
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(records)
}

// completeRecord builds a Chrome "X" (complete) record: a span with an
// explicit duration, free of B/E stack discipline.
func completeRecord(name string, ts, dur int64, pid, tid int, args map[string]any) traceRecord {
	return traceRecord{
		Name: name, Cat: "span", Ph: "X", Ts: ts, Dur: dur,
		Pid: pid, Tid: tid, Args: args,
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
