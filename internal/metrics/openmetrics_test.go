package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestObserveWithExemplar(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, time.Second})
	h.ObserveWithExemplar(2*time.Millisecond, "0af7651916cd43dd8448eb211c80319c")
	h.ObserveWithExemplar(500*time.Microsecond, "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	h.Observe(3 * time.Millisecond) // plain path leaves exemplars alone
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if ex := h.exemplars[1].Load(); ex == nil || ex.traceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("bucket 1 exemplar = %+v", ex)
	}
	if ex := h.exemplars[0].Load(); ex == nil || ex.traceID != "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa" {
		t.Fatalf("bucket 0 exemplar = %+v", ex)
	}
	// Empty trace ID degrades to a plain observation.
	h.ObserveWithExemplar(100*time.Microsecond, "")
	if ex := h.exemplars[0].Load(); ex.traceID != "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa" {
		t.Fatal("empty trace ID overwrote an exemplar")
	}
}

func TestWriteOpenMetricsExemplars(t *testing.T) {
	r := New()
	r.Counter("test_requests_total", "requests").Inc()
	h := r.Histogram("test_latency_seconds", "latency", []time.Duration{time.Millisecond, time.Second})
	h.ObserveWithExemplar(2*time.Millisecond, "0af7651916cd43dd8448eb211c80319c")

	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("missing terminal # EOF:\n%s", out)
	}
	if !strings.Contains(out, `test_latency_seconds_bucket{le="1"} 1 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.002`) {
		t.Fatalf("exemplar missing from bucket line:\n%s", out)
	}
	if !strings.Contains(out, "test_requests_total 1\n") {
		t.Fatalf("counter missing:\n%s", out)
	}

	// The 0.0.4 writer stays exemplar-free and EOF-free.
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "trace_id=") || strings.Contains(sb.String(), "# EOF") {
		t.Fatalf("0.0.4 exposition leaked OpenMetrics syntax:\n%s", sb.String())
	}
}

func TestObservePathStaysZeroAlloc(t *testing.T) {
	h := NewHistogram(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("plain Observe allocates %.1f/op, want 0", allocs)
	}
}
