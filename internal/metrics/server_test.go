package metrics

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"chortle/internal/core"
	"chortle/internal/network"
)

// mapFixture builds a small multi-output network with repeated tree
// shapes (so memo hits occur) and maps it with the metrics bridge
// attached, populating reg the way a -debug-addr CLI run would.
func mapFixture(t *testing.T, reg *Registry) {
	t.Helper()
	nw := network.New("fixture")
	for c := 0; c < 6; c++ {
		p := fmt.Sprintf("c%d", c)
		var ins [4]*network.Node
		for i := range ins {
			ins[i] = nw.AddInput(fmt.Sprintf("x%s_%d", p, i))
		}
		a := nw.AddGate("a"+p, network.OpAnd,
			network.Fanin{Node: ins[0]}, network.Fanin{Node: ins[1]})
		b := nw.AddGate("b"+p, network.OpAnd,
			network.Fanin{Node: ins[2]}, network.Fanin{Node: ins[3], Invert: true})
		r := nw.AddGate("r"+p, network.OpOr,
			network.Fanin{Node: a}, network.Fanin{Node: b})
		nw.MarkOutput("y"+p, r, false)
	}
	opts := core.DefaultOptions(4)
	opts.Observer = NewObserverWithRuntime(reg)
	if _, err := core.Map(nw, opts); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServeEndpoints is the debug server's end-to-end smoke test: a
// real observed mapping run, then every endpoint the -debug-addr flag
// promises, with /metrics validated against the Prometheus text format
// and checked for the acceptance-criteria series.
func TestServeEndpoints(t *testing.T) {
	reg := New()
	mapFixture(t, reg)

	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	base := "http://" + s.Addr()

	// /metrics: parses as Prometheus text exposition and carries the
	// required families.
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	names := checkPromFormat(t, body)
	for _, want := range []string{
		"chortle_phase_duration_seconds_bucket", // mapper phase durations
		"chortle_memo_hit_rate",                 // memo hit rate
		"chortle_degraded_trees_total",          // degraded-tree count
		"chortle_run_gc_pause_seconds_total",    // GC pause totals (run-scoped)
		"chortle_process_gc_pause_seconds_total",
		"chortle_maps_total",
		"chortle_solve_duration_seconds_count",
	} {
		if !names[want] {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(body, "chortle_maps_total 1") {
		t.Errorf("/metrics did not count the mapping run:\n%s", body)
	}
	if !strings.Contains(body, `chortle_phase_duration_seconds_bucket{phase="solve"`) {
		t.Error("/metrics missing the solve phase series")
	}

	// /debug/vars: valid JSON including the published registry.
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["chortle"]; !ok {
		t.Error("/debug/vars missing the published chortle registry")
	}

	// pprof surface.
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/heap?debug=1",
		"/debug/pprof/cmdline",
		"/debug/pprof/symbol",
	} {
		if code, _ := get(t, base+path); code != http.StatusOK {
			t.Errorf("%s status %d, want 200", path, code)
		}
	}

	// Graceful shutdown: returns cleanly, then the port stops answering.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("server still answering after Shutdown")
	}
	// Second shutdown is a safe no-op.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", New()); err == nil {
		t.Fatal("bad address did not fail")
	}
}
