package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("availability=99.9, p95_solve_ms=250")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 2 {
		t.Fatalf("parsed %d objectives, want 2", len(slos))
	}
	if slos[0].Kind != SLOAvailability || slos[0].Target != 99.9 {
		t.Fatalf("availability mangled: %+v", slos[0])
	}
	if b := slos[0].Budget(); b < 0.0009 || b > 0.0011 {
		t.Fatalf("availability budget = %g, want ~0.001", b)
	}
	if slos[1].Kind != SLOLatency || slos[1].Target != 95 || slos[1].Objective != 250*time.Millisecond {
		t.Fatalf("latency mangled: %+v", slos[1])
	}

	for _, bad := range []string{
		"", "availability", "availability=abc", "availability=0", "availability=100",
		"p95_solve_ms=0", "p0_solve_ms=10", "p100_solve_ms=10", "frobnication=3",
	} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("ParseSLOs(%q) accepted", bad)
		}
	}
}

func TestSLOWatchdogBurnAndStatus(t *testing.T) {
	slos, err := ParseSLOs("availability=99,p95_solve_ms=100")
	if err != nil {
		t.Fatal(err)
	}
	reg := New()
	var transitions []SLOStatus
	logged := &strings.Builder{}
	w := NewSLOWatchdog(slos, reg, SLOConfig{
		Windows: []time.Duration{10 * time.Second, time.Minute},
		WarnAt:  2, CritAt: 10,
		Logf:     func(f string, a ...any) { logged.WriteString(strings.TrimSpace(strings.Join([]string{f}, ""))) },
		OnChange: func(s SLOStatus, _ []SLOReport) { transitions = append(transitions, s) },
	})

	now := time.Now()
	// Healthy traffic: 200 good requests, fast solves.
	for i := 0; i < 200; i++ {
		w.ObserveRequest(200)
		w.ObserveSolve(5 * time.Millisecond)
	}
	w.Tick(now)
	if got := w.Status(); got != SLOOK {
		t.Fatalf("healthy status = %v, want ok", got)
	}
	if w.burn(0, 0) != 0 {
		t.Fatalf("healthy burn = %g, want 0", w.burn(0, 0))
	}

	// Sustained failure: half the requests 500, all solves slow. Burn
	// far above critical in both windows (the long window uses the
	// available history on a young watchdog).
	for i := 0; i < 200; i++ {
		code := 200
		if i%2 == 0 {
			code = 500
		}
		w.ObserveRequest(code)
		w.ObserveSolve(500 * time.Millisecond)
	}
	w.Tick(now.Add(10 * time.Second))
	if got := w.Status(); got != SLOCritical {
		t.Fatalf("burning status = %v, want critical (reports: %+v)", got, w.Report())
	}
	// Availability: 100 bad / 400 total over the window containing both
	// batches → bad fraction 0.25, budget 0.01 → burn 25.
	if b := w.burn(0, 1); b < 20 || b > 30 {
		t.Fatalf("availability 1m burn = %g, want ~25", b)
	}
	// Latency: 200 bad / 400 total, budget 0.05 → burn 10.
	if b := w.burn(1, 1); b < 9 || b > 11 {
		t.Fatalf("latency 1m burn = %g, want ~10", b)
	}
	if len(transitions) != 1 || transitions[0] != SLOCritical {
		t.Fatalf("transitions = %v, want [critical]", transitions)
	}
	if logged.Len() == 0 {
		t.Fatal("no log line on transition")
	}

	// Recovery: a flood of good traffic dilutes the short window below
	// the warn threshold while the long window still remembers.
	for i := 0; i < 100000; i++ {
		w.ObserveRequest(200)
		w.ObserveSolve(time.Millisecond)
	}
	w.Tick(now.Add(25 * time.Second))
	if got := w.Status(); got != SLOOK {
		t.Fatalf("recovered status = %v, want ok (reports: %+v)", got, w.Report())
	}
	if len(transitions) != 2 || transitions[1] != SLOOK {
		t.Fatalf("transitions = %v, want [critical ok]", transitions)
	}

	// The registry carries the gauges.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`chortled_slo_burn_rate{slo="availability",window="10s"}`,
		`chortled_slo_burn_rate{slo="p95_solve_ms",window="1m"}`,
		`chortled_slo_target{slo="availability"} 99`,
		`chortled_slo_status 0`,
		`chortled_slo_events_total{slo="availability",class="bad"} 100`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSLOWatchdogBothWindowsRequired: a short burst saturates the short
// window but the long window (with real history behind it) stays calm —
// the multi-window rule must keep the status at ok.
func TestSLOWatchdogBothWindowsRequired(t *testing.T) {
	slos, _ := ParseSLOs("availability=99")
	w := NewSLOWatchdog(slos, nil, SLOConfig{
		Windows: []time.Duration{10 * time.Second, 10 * time.Minute},
		WarnAt:  2, CritAt: 10,
	})
	now := time.Now()
	// 10 minutes of healthy history at 10s ticks.
	for i := 0; i < 60; i++ {
		for j := 0; j < 1000; j++ {
			w.ObserveRequest(200)
		}
		now = now.Add(10 * time.Second)
		w.Tick(now)
	}
	// One bad burst: 50 failures in the last tick.
	for j := 0; j < 50; j++ {
		w.ObserveRequest(503)
	}
	now = now.Add(10 * time.Second)
	w.Tick(now)
	// Short window burns hot; long window (50 bad / ~60050 total,
	// budget 0.01 → burn ~0.08) stays calm; status must be ok.
	if b := w.burn(0, 0); b < 10 {
		t.Fatalf("short-window burn = %g, want hot", b)
	}
	if b := w.burn(0, 1); b > 1 {
		t.Fatalf("long-window burn = %g, want calm", b)
	}
	if got := w.Status(); got != SLOOK {
		t.Fatalf("status = %v, want ok under a blip", got)
	}
}

func TestSLOWatchdogNilSafe(t *testing.T) {
	var w *SLOWatchdog
	allocs := testing.AllocsPerRun(1000, func() {
		w.ObserveRequest(500)
		w.ObserveSolve(time.Second)
		_ = w.Status()
		w.Tick(time.Time{})
	})
	if allocs != 0 {
		t.Fatalf("nil SLOWatchdog allocates %v per op, want 0", allocs)
	}
	if w.Report() != nil || w.SLOs() != nil {
		t.Fatal("nil watchdog returned non-nil reports")
	}
}

// TestSLOWatchdogObserveZeroAlloc pins the enabled observe path: the
// per-request feed must not allocate (it runs on the serving hot path).
func TestSLOWatchdogObserveZeroAlloc(t *testing.T) {
	slos, _ := ParseSLOs("availability=99.9,p95_solve_ms=250")
	w := NewSLOWatchdog(slos, nil, SLOConfig{})
	allocs := testing.AllocsPerRun(1000, func() {
		w.ObserveRequest(200)
		w.ObserveSolve(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("SLO observe path allocates %v per op, want 0", allocs)
	}
}

func TestSLOWatchdogSamplePruning(t *testing.T) {
	slos, _ := ParseSLOs("availability=99")
	w := NewSLOWatchdog(slos, nil, SLOConfig{
		Windows:    []time.Duration{time.Second, 10 * time.Second},
		MaxSamples: 8,
	})
	now := time.Now()
	for i := 0; i < 1000; i++ {
		w.ObserveRequest(200)
		now = now.Add(time.Second)
		w.Tick(now)
	}
	w.mu.Lock()
	n := len(w.samples)
	w.mu.Unlock()
	if n > 8 {
		t.Fatalf("sample ring grew to %d, bound is 8", n)
	}
}
