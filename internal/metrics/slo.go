package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SLO burn-rate watchdog. An operator declares service-level objectives
// ("availability=99.9,p95_solve_ms=250"); the watchdog classifies every
// request and solve as good or bad against them, and on each evaluation
// tick computes the burn rate over multiple trailing windows (5m and 1h
// by default):
//
//	burn = (bad fraction over the window) / (1 - target)
//
// A burn rate of 1 means the error budget is being spent exactly at the
// sustainable rate; 10 means the whole budget would be gone in a tenth
// of the SLO period. Alerting on the *pair* of windows is the standard
// multi-window construction: the short window proves the problem is
// happening now, the long window proves it is not a blip — both must
// exceed the threshold before the status escalates, so a single slow
// request cannot page anyone, and a sustained incident cannot hide.
//
// The watchdog is fed directly by the serving path (ObserveRequest,
// ObserveSolve — both lock-free atomic adds), keeps a bounded ring of
// counter snapshots for the window deltas, exposes its state as
// <prefix>_slo_* gauges on the registry, and reports status transitions
// through a callback so chortled can log WARN/CRITICAL lines and
// trigger a flight-recorder dump while the offending window is still in
// the ring. A nil *SLOWatchdog is the disabled state: every method is a
// nil check and allocates nothing.

// SLOKind discriminates how observations are classified.
type SLOKind uint8

const (
	// SLOAvailability counts requests: bad means the server failed or
	// shed (429 or any 5xx); client errors are the client's problem.
	SLOAvailability SLOKind = iota
	// SLOLatency counts solves: bad means slower than the objective.
	SLOLatency
)

func (k SLOKind) String() string {
	if k == SLOLatency {
		return "latency"
	}
	return "availability"
}

// SLO is one declared objective.
type SLO struct {
	// Name is the label the objective carries in metrics and reports
	// ("availability", "p95_solve_ms").
	Name string
	Kind SLOKind
	// Target is the good-events percentage promised: 99.9 for
	// availability=99.9, the percentile (95) for p95_solve_ms.
	Target float64
	// Objective is the latency bound for SLOLatency objectives.
	Objective time.Duration
}

// Budget is the tolerable bad fraction: 1 - Target/100.
func (s SLO) Budget() float64 { return 1 - s.Target/100 }

// ParseSLOs parses the -slo flag syntax: a comma-separated list of
// objectives, each NAME=VALUE.
//
//	availability=99.9   at most 0.1% of requests may fail or be shed
//	p95_solve_ms=250    at most 5% of solves may take longer than 250ms
//
// The latency form is p<PCT>_solve_ms=<BOUND>: the percentile names the
// target (p99 → 99% of solves under the bound), the value is the bound
// in milliseconds.
func ParseSLOs(spec string) ([]SLO, error) {
	var out []SLO
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("slo %q: want NAME=VALUE", part)
		}
		name = strings.TrimSpace(name)
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("slo %q: bad value: %v", part, err)
		}
		switch {
		case name == "availability":
			if v <= 0 || v >= 100 {
				return nil, fmt.Errorf("slo %q: availability target must be in (0,100)", part)
			}
			out = append(out, SLO{Name: name, Kind: SLOAvailability, Target: v})
		case strings.HasPrefix(name, "p") && strings.HasSuffix(name, "_solve_ms"):
			pctStr := strings.TrimSuffix(strings.TrimPrefix(name, "p"), "_solve_ms")
			pct, err := strconv.ParseFloat(pctStr, 64)
			if err != nil || pct <= 0 || pct >= 100 {
				return nil, fmt.Errorf("slo %q: want p<PCT>_solve_ms with PCT in (0,100)", part)
			}
			if v <= 0 {
				return nil, fmt.Errorf("slo %q: latency bound must be positive", part)
			}
			out = append(out, SLO{
				Name: name, Kind: SLOLatency, Target: pct,
				Objective: time.Duration(v * float64(time.Millisecond)),
			})
		default:
			return nil, fmt.Errorf("slo %q: unknown objective (want availability=PCT or p<PCT>_solve_ms=MS)", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo spec %q declares no objectives", spec)
	}
	return out, nil
}

// SLOStatus is the watchdog's overall health verdict.
type SLOStatus int32

const (
	SLOOK SLOStatus = iota
	SLOWarn
	SLOCritical
)

func (s SLOStatus) String() string {
	switch s {
	case SLOWarn:
		return "warn"
	case SLOCritical:
		return "critical"
	default:
		return "ok"
	}
}

// SLOWindowReport is one window's burn rate at the last evaluation.
type SLOWindowReport struct {
	Window string  `json:"window"`
	Burn   float64 `json:"burn_rate"`
}

// SLOReport is one objective's state at the last evaluation — the
// /debug/slo JSON body and the postmortem bundle's SLO extract.
type SLOReport struct {
	Name        string            `json:"slo"`
	Kind        string            `json:"kind"`
	Target      float64           `json:"target"`
	ObjectiveMS float64           `json:"objective_ms,omitempty"`
	Budget      float64           `json:"budget"`
	Good        int64             `json:"good"`
	Bad         int64             `json:"bad"`
	Windows     []SLOWindowReport `json:"windows"`
	Status      string            `json:"status"`
}

// SLOConfig tunes a watchdog. Zero fields take the documented defaults.
type SLOConfig struct {
	// Windows are the trailing evaluation windows, shortest first.
	// Default 5m and 1h.
	Windows []time.Duration
	// WarnAt and CritAt are burn-rate thresholds; the status escalates
	// only when every window exceeds the threshold. Defaults 2 and 10.
	WarnAt, CritAt float64
	// Prefix names the exposed gauges (<prefix>_slo_*). Default
	// "chortled".
	Prefix string
	// Logf receives structured WARN/CRITICAL/RESOLVED lines on status
	// transitions; nil discards.
	Logf func(format string, args ...any)
	// OnChange fires after every status transition with the new status
	// and the per-objective reports that produced it. Runs on the Tick
	// caller's goroutine — keep it quick or hand off.
	OnChange func(SLOStatus, []SLOReport)
	// MaxSamples bounds the snapshot ring (default 4096). With the
	// default 10s tick, 4096 samples cover more than 11 hours — far
	// beyond the 1h window.
	MaxSamples int
}

// sloSample is one tick's cumulative counters, per objective.
type sloSample struct {
	t    time.Time
	good []int64
	bad  []int64
}

// SLOWatchdog evaluates declared objectives as multi-window burn rates.
type SLOWatchdog struct {
	slos []SLO
	cfg  SLOConfig

	good []atomic.Int64 // cumulative, per objective
	bad  []atomic.Int64

	mu      sync.Mutex
	samples []sloSample
	burns   [][]float64 // [objective][window], last evaluation
	status  SLOStatus
}

// NewSLOWatchdog builds a watchdog for the given objectives and
// registers its gauges on reg (<prefix>_slo_burn_rate per objective per
// window, <prefix>_slo_target, <prefix>_slo_events_total, and one
// overall <prefix>_slo_status). Call Run (or Tick, in tests) to
// evaluate.
func NewSLOWatchdog(slos []SLO, reg *Registry, cfg SLOConfig) *SLOWatchdog {
	if len(cfg.Windows) == 0 {
		cfg.Windows = []time.Duration{5 * time.Minute, time.Hour}
	}
	sort.Slice(cfg.Windows, func(i, j int) bool { return cfg.Windows[i] < cfg.Windows[j] })
	if cfg.WarnAt <= 0 {
		cfg.WarnAt = 2
	}
	if cfg.CritAt <= 0 {
		cfg.CritAt = 10
	}
	if cfg.CritAt < cfg.WarnAt {
		cfg.CritAt = cfg.WarnAt
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "chortled"
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 4096
	}
	w := &SLOWatchdog{
		slos:  append([]SLO(nil), slos...),
		cfg:   cfg,
		good:  make([]atomic.Int64, len(slos)),
		bad:   make([]atomic.Int64, len(slos)),
		burns: make([][]float64, len(slos)),
	}
	for i := range w.burns {
		w.burns[i] = make([]float64, len(cfg.Windows))
	}
	// The zero baseline sample: a burst right after boot measures
	// against "nothing had happened yet" rather than being invisible
	// until a second tick lands.
	w.samples = append(w.samples, sloSample{
		t: time.Now(), good: make([]int64, len(slos)), bad: make([]int64, len(slos)),
	})

	if reg != nil {
		for i, s := range w.slos {
			i := i
			reg.Gauge(cfg.Prefix+"_slo_target", "Declared SLO target (percent good).",
				Label{Key: "slo", Value: s.Name}).Set(s.Target)
			reg.GaugeFunc(cfg.Prefix+"_slo_events_total", "Events classified against the SLO.",
				func() float64 { return float64(w.good[i].Load()) },
				Label{Key: "slo", Value: s.Name}, Label{Key: "class", Value: "good"})
			reg.GaugeFunc(cfg.Prefix+"_slo_events_total", "Events classified against the SLO.",
				func() float64 { return float64(w.bad[i].Load()) },
				Label{Key: "slo", Value: s.Name}, Label{Key: "class", Value: "bad"})
			for j, win := range cfg.Windows {
				j := j
				reg.GaugeFunc(cfg.Prefix+"_slo_burn_rate",
					"Error-budget burn rate over the trailing window (1 = budget spent exactly at the sustainable rate).",
					func() float64 { return w.burn(i, j) },
					Label{Key: "slo", Value: s.Name}, Label{Key: "window", Value: fmtWindow(win)})
			}
		}
		reg.GaugeFunc(cfg.Prefix+"_slo_status",
			"Overall SLO status: 0 ok, 1 warn, 2 critical.",
			func() float64 { return float64(w.Status()) })
	}
	return w
}

// fmtWindow renders a window compactly ("5m", "1h", "90s").
func fmtWindow(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return strconv.Itoa(int(d/time.Hour)) + "h"
	case d >= time.Minute && d%time.Minute == 0:
		return strconv.Itoa(int(d/time.Minute)) + "m"
	case d >= time.Second && d%time.Second == 0:
		return strconv.Itoa(int(d/time.Second)) + "s"
	default:
		return d.String()
	}
}

// ObserveRequest classifies one finished request against every
// availability objective: 429 and 5xx burn budget, everything else
// (including 4xx — the client's fault) is good. Lock-free; nil
// watchdogs discard.
func (w *SLOWatchdog) ObserveRequest(code int) {
	if w == nil {
		return
	}
	bad := code == 429 || code >= 500
	for i := range w.slos {
		if w.slos[i].Kind != SLOAvailability {
			continue
		}
		if bad {
			w.bad[i].Add(1)
		} else {
			w.good[i].Add(1)
		}
	}
}

// ObserveSolve classifies one measured solve against every latency
// objective. Lock-free; nil watchdogs discard.
func (w *SLOWatchdog) ObserveSolve(d time.Duration) {
	if w == nil {
		return
	}
	for i := range w.slos {
		if w.slos[i].Kind != SLOLatency {
			continue
		}
		if d > w.slos[i].Objective {
			w.bad[i].Add(1)
		} else {
			w.good[i].Add(1)
		}
	}
}

// burn returns the last evaluated burn rate for (objective, window).
func (w *SLOWatchdog) burn(slo, window int) float64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.burns[slo][window]
}

// Status returns the overall status from the last evaluation.
func (w *SLOWatchdog) Status() SLOStatus {
	if w == nil {
		return SLOOK
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.status
}

// Tick snapshots the counters and re-evaluates every objective over
// every window, firing Logf/OnChange on a status transition. Run calls
// it on a ticker; tests call it directly with a controlled clock.
func (w *SLOWatchdog) Tick(now time.Time) {
	if w == nil {
		return
	}
	n := len(w.slos)
	cur := sloSample{t: now, good: make([]int64, n), bad: make([]int64, n)}
	for i := 0; i < n; i++ {
		cur.good[i] = w.good[i].Load()
		cur.bad[i] = w.bad[i].Load()
	}

	w.mu.Lock()
	w.samples = append(w.samples, cur)
	// Prune: keep enough history for the longest window plus slack, and
	// never exceed the ring bound.
	longest := w.cfg.Windows[len(w.cfg.Windows)-1]
	cutoff := now.Add(-longest - longest/4)
	first := 0
	for first < len(w.samples)-1 && w.samples[first].t.Before(cutoff) {
		first++
	}
	if keep := len(w.samples) - first; keep > w.cfg.MaxSamples {
		first = len(w.samples) - w.cfg.MaxSamples
	}
	w.samples = append(w.samples[:0], w.samples[first:]...)

	worst := SLOOK
	for i := range w.slos {
		budget := w.slos[i].Budget()
		sloStatus := SLOCritical
		for j, win := range w.cfg.Windows {
			base := w.sampleAtLocked(now.Add(-win))
			dGood := cur.good[i] - base.good[i]
			dBad := cur.bad[i] - base.bad[i]
			total := dGood + dBad
			b := 0.0
			if total > 0 && budget > 0 {
				b = (float64(dBad) / float64(total)) / budget
			}
			w.burns[i][j] = b
			if b < w.cfg.CritAt {
				sloStatus = minStatus(sloStatus, SLOWarn)
			}
			if b < w.cfg.WarnAt {
				sloStatus = SLOOK
			}
		}
		if sloStatus > worst {
			worst = sloStatus
		}
	}
	prev := w.status
	w.status = worst
	reports := w.reportLocked()
	w.mu.Unlock()

	if worst != prev {
		if w.cfg.Logf != nil {
			w.cfg.Logf("chortled: SLO %s (was %s): %s",
				strings.ToUpper(worst.String()), prev, summarize(reports))
		}
		if w.cfg.OnChange != nil {
			w.cfg.OnChange(worst, reports)
		}
	}
}

func minStatus(a, b SLOStatus) SLOStatus {
	if a < b {
		return a
	}
	return b
}

// summarize renders reports into one log-line fragment.
func summarize(reports []SLOReport) string {
	var sb strings.Builder
	for i, r := range reports {
		if i > 0 {
			sb.WriteString("; ")
		}
		fmt.Fprintf(&sb, "%s burn", r.Name)
		for _, win := range r.Windows {
			fmt.Fprintf(&sb, " %s=%.2f", win.Window, win.Burn)
		}
		fmt.Fprintf(&sb, " (budget %.4g%%)", r.Budget*100)
	}
	return sb.String()
}

// sampleAtLocked returns the earliest sample at or after t, falling
// back to the oldest available — a young server evaluates over the
// history it has. Callers hold w.mu.
func (w *SLOWatchdog) sampleAtLocked(t time.Time) sloSample {
	idx := sort.Search(len(w.samples), func(i int) bool {
		return !w.samples[i].t.Before(t)
	})
	if idx >= len(w.samples) {
		idx = len(w.samples) - 1
	}
	return w.samples[idx]
}

// Run evaluates on a ticker until ctx ends. interval <= 0 defaults to
// 10 seconds.
func (w *SLOWatchdog) Run(done <-chan struct{}, interval time.Duration) {
	if w == nil {
		return
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case now := <-t.C:
			w.Tick(now)
		}
	}
}

// Report returns every objective's state at the last evaluation.
func (w *SLOWatchdog) Report() []SLOReport {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reportLocked()
}

func (w *SLOWatchdog) reportLocked() []SLOReport {
	out := make([]SLOReport, 0, len(w.slos))
	for i, s := range w.slos {
		r := SLOReport{
			Name:   s.Name,
			Kind:   s.Kind.String(),
			Target: s.Target,
			Budget: s.Budget(),
			Good:   w.good[i].Load(),
			Bad:    w.bad[i].Load(),
		}
		if s.Kind == SLOLatency {
			r.ObjectiveMS = float64(s.Objective.Microseconds()) / 1000
		}
		status := SLOCritical
		for j, win := range w.cfg.Windows {
			b := w.burns[i][j]
			r.Windows = append(r.Windows, SLOWindowReport{Window: fmtWindow(win), Burn: b})
			if b < w.cfg.CritAt {
				status = minStatus(status, SLOWarn)
			}
			if b < w.cfg.WarnAt {
				status = SLOOK
			}
		}
		r.Status = status.String()
		out = append(out, r)
	}
	return out
}

// SLOs returns the declared objectives.
func (w *SLOWatchdog) SLOs() []SLO {
	if w == nil {
		return nil
	}
	return append([]SLO(nil), w.slos...)
}
