// Package metrics is the export half of the mapper's observability
// stack: a zero-dependency, concurrency-safe registry of counters,
// gauges and fixed-bucket duration histograms, populated from the
// internal/obs event stream by the Observer bridge and exposed to
// operator tooling as Prometheus text exposition (WritePrometheus), an
// expvar tree (PublishExpvar), and a debug HTTP server (Serve) that
// also mounts net/http/pprof.
//
// The registry follows the internal/obs contract: feeding it never
// perturbs the mapping. All metric updates are lock-free atomics; the
// bridge pre-creates every series it touches, so the per-event path
// allocates nothing.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant name/value pair attached to a metric series at
// registration (e.g. phase="solve" on a phase-duration histogram).
type Label struct {
	Key   string
	Value string
}

// metricKind discriminates the series types a family can hold.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered time series: a family name plus a fixed
// label set and the live value behind it.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	gfn    func() float64
	hist   *Histogram
}

// family groups every series registered under one metric name; the
// exposition writer emits one HELP/TYPE header per family with its
// series contiguous, as the Prometheus text format requires.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	byKey  map[string]*series
}

// Registry is a concurrency-safe collection of metric families.
// Registration methods are get-or-create: asking for the same
// (name, labels) twice returns the same series, so packages can share
// a registry without coordinating initialization order. Registering a
// name twice with different types panics — that is a programming
// error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// labelKey renders a label set into a map key. Labels are kept in the
// order given — callers use consistent orders — so the key is cheap.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	key := ""
	for _, l := range labels {
		key += l.Key + "\x00" + l.Value + "\x00"
	}
	return key
}

// lookup finds or creates the family and the series slot for
// (name, labels), enforcing type consistency.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) (*family, *series, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s",
			name, f.kind.promType(), kind.promType()))
	}
	key := labelKey(labels)
	if s := f.byKey[key]; s != nil {
		return f, s, false
	}
	s := &series{labels: append([]Label(nil), labels...)}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return f, s, true
}

// Counter returns the monotonically increasing counter registered
// under (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	_, s, fresh := r.lookup(name, help, kindCounter, labels)
	if fresh {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge returns the gauge registered under (name, labels), creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	_, s, fresh := r.lookup(name, help, kindGauge, labels)
	if fresh {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time — for derived quantities (hit rates) and live
// process state (goroutine counts). Re-registering the same
// (name, labels) replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	_, s, _ := r.lookup(name, help, kindGaugeFunc, labels)
	s.gfn = fn
}

// Histogram returns the duration histogram registered under
// (name, labels), creating it on first use with the given bucket upper
// bounds (DefaultDurationBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []time.Duration, labels ...Label) *Histogram {
	_, s, fresh := r.lookup(name, help, kindHistogram, labels)
	if fresh {
		s.hist = NewHistogram(buckets)
	}
	return s.hist
}

// Counter is a monotonically increasing float64 (atomic CAS update).
// The zero value is ready to use.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by v; negative or NaN deltas are ignored
// (a counter only goes up).
func (c *Counter) Add(v float64) {
	if !(v > 0) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous float64 value (atomic store/CAS). The zero
// value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultDurationBuckets is the histogram bucket ladder used when no
// explicit buckets are given: a 1-2-5 progression from 1µs to 10s —
// wide enough to straddle both a microsecond tree solve and a
// multi-second suite phase.
var DefaultDurationBuckets = []time.Duration{
	time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

// Histogram is a fixed-bucket duration histogram: per-bucket atomic
// counts plus an atomic sum, so Observe is lock-free and
// allocation-free. Quantiles are estimated from the bucket counts.
type Histogram struct {
	bounds []float64 // bucket upper bounds in seconds, ascending
	counts []atomic.Uint64
	sum    Counter // total observed seconds
	count  atomic.Uint64
	// exemplars holds the most recent traced observation per bucket
	// (last-write-wins), linking a latency bucket to a concrete request
	// trace. Only ObserveWithExemplar writes here; the plain Observe
	// path stays allocation-free.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar is one traced observation: the trace ID that produced it,
// the observed value in seconds, and when it happened (unix seconds).
type exemplar struct {
	traceID string
	value   float64
	unix    float64
}

// NewHistogram builds a histogram with the given bucket upper bounds
// (DefaultDurationBuckets when nil). Bounds are sorted and
// deduplicated; an implicit +Inf bucket catches overflow.
func NewHistogram(buckets []time.Duration) *Histogram {
	if len(buckets) == 0 {
		buckets = DefaultDurationBuckets
	}
	bounds := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		bounds = append(bounds, b.Seconds())
	}
	sort.Float64s(bounds)
	uniq := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != bounds[i-1] {
			uniq = append(uniq, b)
		}
	}
	bounds = uniq
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveSeconds(d.Seconds()) }

// ObserveSeconds records one observation given in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	i := sort.SearchFloat64s(h.bounds, s) // first bound >= s
	h.counts[i].Add(1)
	h.sum.Add(s)
	h.count.Add(1)
}

// ObserveWithExemplar records one duration and attaches the trace ID
// that produced it as the bucket's exemplar (last-write-wins), so a
// latency spike in the exposition links to a concrete request. An
// empty trace ID degrades to a plain Observe.
func (h *Histogram) ObserveWithExemplar(d time.Duration, traceID string) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.sum.Add(s)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&exemplar{
			traceID: traceID, value: s,
			unix: float64(time.Now().UnixNano()) / 1e9,
		})
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	return time.Duration(h.sum.Value() * float64(time.Second))
}

// Quantile estimates the p-quantile (0 < p <= 1) from the bucket
// counts: the bucket holding the p-ranked observation is located and
// the position inside it interpolated linearly. Estimates are bounded
// by the bucket ladder — observations past the last bound report the
// last bound. Returns 0 with no observations.
func (h *Histogram) Quantile(p float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			var lo float64
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[len(h.bounds)-1]
			if i < len(h.bounds) {
				hi = h.bounds[i]
			} else {
				// Overflow bucket: no upper bound to interpolate toward.
				return secondsToDuration(hi)
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return secondsToDuration(lo + (hi-lo)*frac)
		}
		cum += c
	}
	return secondsToDuration(h.bounds[len(h.bounds)-1])
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// snapshotSeries is the point-in-time value of one series, used by the
// exposition writers.
type snapshotSeries struct {
	labels []Label
	value  float64   // counter / gauge / gauge-func value
	hist   *histSnap // non-nil for histograms
}

type histSnap struct {
	bounds    []float64
	counts    []uint64 // cumulative, per bound; last entry includes +Inf
	sum       float64
	count     uint64
	exemplars []*exemplar // per bucket (len(bounds)+1); nil = none yet
}

type snapshotFamily struct {
	name   string
	help   string
	kind   metricKind
	series []snapshotSeries
}

// snapshot captures every family under the registry lock; values are
// read from the atomics afterward-consistent (each series is
// individually consistent, the set is not a global atomic cut — the
// usual scrape semantics).
func (r *Registry) snapshot() []snapshotFamily {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	out := make([]snapshotFamily, 0, len(fams))
	for _, f := range fams {
		sf := snapshotFamily{name: f.name, help: f.help, kind: f.kind}
		for _, s := range f.series {
			ss := snapshotSeries{labels: s.labels}
			switch f.kind {
			case kindCounter:
				ss.value = s.ctr.Value()
			case kindGauge:
				ss.value = s.gauge.Value()
			case kindGaugeFunc:
				if s.gfn != nil {
					ss.value = s.gfn()
				}
			case kindHistogram:
				h := s.hist
				hs := &histSnap{bounds: h.bounds, sum: h.sum.Value()}
				hs.counts = make([]uint64, len(h.counts))
				hs.exemplars = make([]*exemplar, len(h.counts))
				var cum uint64
				for i := range h.counts {
					cum += h.counts[i].Load()
					hs.counts[i] = cum
					hs.exemplars[i] = h.exemplars[i].Load()
				}
				hs.count = cum
				ss.hist = hs
			}
			sf.series = append(sf.series, ss)
		}
		out = append(out, sf)
	}
	return out
}
