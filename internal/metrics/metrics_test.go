package metrics

import (
	"bufio"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatal("get-or-create returned a different counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}

	labeled := r.Counter("c2_total", "labeled", Label{"phase", "solve"})
	other := r.Counter("c2_total", "labeled", Label{"phase", "forest"})
	if labeled == other {
		t.Fatal("different label sets shared a series")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := New()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("concurrent counter = %v, want %d", got, workers*per)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	for i := 0; i < 50; i++ {
		h.Observe(500 * time.Microsecond) // bucket 0
	}
	for i := 0; i < 40; i++ {
		h.Observe(5 * time.Millisecond) // bucket 1
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second) // overflow
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	// p50 falls on the boundary of bucket 0: interpolation stays within
	// (0, 1ms].
	if p := h.Quantile(0.50); p <= 0 || p > time.Millisecond {
		t.Errorf("p50 = %s, want in (0, 1ms]", p)
	}
	if p := h.Quantile(0.90); p <= time.Millisecond || p > 10*time.Millisecond {
		t.Errorf("p90 = %s, want in (1ms, 10ms]", p)
	}
	// Overflow observations clamp to the last bound.
	if p := h.Quantile(0.99); p != 100*time.Millisecond {
		t.Errorf("p99 = %s, want 100ms (clamped)", p)
	}
	if h.Quantile(1) != 100*time.Millisecond {
		t.Errorf("p100 = %s, want clamp", h.Quantile(1))
	}
	if NewHistogram(nil).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
}

// promLine matches one exposition sample line: name, optional labels,
// a float value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

// checkPromFormat structurally validates Prometheus text exposition:
// every line is a comment or a sample; TYPE precedes its family's
// samples; sample names belong to the most recent TYPE'd family
// (allowing _bucket/_sum/_count suffixes for histograms); values parse.
// Returns the set of sample names seen.
func checkPromFormat(t *testing.T, text string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	var curFamily, curType string
	sc := bufio.NewScanner(strings.NewReader(text))
	for n := 1; sc.Scan(); n++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", n, line)
			}
			curFamily, curType = parts[2], parts[3]
			switch curType {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", n, curType)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid sample line: %q", n, line)
		}
		name := m[1]
		names[name] = true
		base := name
		if curType == "histogram" {
			base = strings.TrimSuffix(base, "_bucket")
			base = strings.TrimSuffix(base, "_sum")
			base = strings.TrimSuffix(base, "_count")
		}
		if base != curFamily {
			t.Fatalf("line %d: sample %q outside its TYPE'd family %q", n, name, curFamily)
		}
		if v := m[3]; v != "NaN" && !strings.Contains(v, "Inf") {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				t.Fatalf("line %d: value %q: %v", n, v, err)
			}
		}
	}
	return names
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("chortle_events_total", "Events seen.").Add(42)
	r.Gauge("chortle_last_luts", "Last LUT count.").Set(135)
	r.GaugeFunc("chortle_ratio", "A derived ratio.", func() float64 { return 0.5 })
	h := r.Histogram("chortle_phase_duration_seconds", "Phase wall times.", nil, Label{"phase", "solve"})
	h.Observe(3 * time.Millisecond)
	h.Observe(300 * time.Millisecond)
	r.Histogram("chortle_phase_duration_seconds", "Phase wall times.", nil, Label{"phase", `we"ird\p`}).
		Observe(time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	names := checkPromFormat(t, text)
	for _, want := range []string{
		"chortle_events_total", "chortle_last_luts", "chortle_ratio",
		"chortle_phase_duration_seconds_bucket",
		"chortle_phase_duration_seconds_sum",
		"chortle_phase_duration_seconds_count",
	} {
		if !names[want] {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `le="+Inf"`) {
		t.Error("histogram missing +Inf bucket")
	}
	if !strings.Contains(text, `phase="we\"ird\\p"`) {
		t.Errorf("label escaping wrong:\n%s", text)
	}
	if !strings.Contains(text, "chortle_events_total 42") {
		t.Errorf("counter value missing:\n%s", text)
	}
	// Cumulative bucket counts: the +Inf bucket equals _count.
	if !strings.Contains(text, `chortle_phase_duration_seconds_bucket{phase="solve",le="+Inf"} 2`) {
		t.Errorf("+Inf bucket not cumulative:\n%s", text)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", "", []time.Duration{time.Millisecond, time.Second})
	h.Observe(time.Microsecond)
	h.Observe(100 * time.Millisecond)
	h.Observe(time.Minute)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`h_seconds_bucket{le="0.001"} 1`,
		`h_seconds_bucket{le="1"} 2`,
		`h_seconds_bucket{le="+Inf"} 3`,
		`h_seconds_count 3`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q in:\n%s", want, sb.String())
		}
	}
}

func TestFormatValue(t *testing.T) {
	for v, want := range map[float64]string{
		42:          "42",
		0.5:         "0.5",
		math.Inf(1): "+Inf",
	} {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestExpvarVar(t *testing.T) {
	r := New()
	r.Counter("a_total", "").Add(3)
	r.Histogram("h_seconds", "", nil, Label{"phase", "solve"}).Observe(time.Millisecond)
	s := r.ExpvarVar().String()
	for _, want := range []string{`"a_total":3`, `h_seconds;phase=solve`, `"count":1`} {
		if !strings.Contains(s, want) {
			t.Errorf("expvar JSON missing %q: %s", want, s)
		}
	}
	if err := r.PublishExpvar("chortle_test_reg"); err != nil {
		t.Fatal(err)
	}
	if err := r.PublishExpvar("chortle_test_reg"); err != nil {
		t.Fatalf("re-publishing same registry not idempotent: %v", err)
	}
	if err := New().PublishExpvar("chortle_test_reg"); err == nil {
		t.Fatal("publishing a second registry under a taken name should fail")
	}
}
