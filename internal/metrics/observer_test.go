package metrics

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"chortle/internal/obs"
)

// stream synthesizes the event shape of one small mapping run.
func stream(t0 time.Time) []obs.Event {
	return []obs.Event{
		{Kind: obs.KindMapStart, Time: t0, K: 4, N: 100},
		{Kind: obs.KindPhaseStart, Time: t0, Phase: "prepare"},
		{Kind: obs.KindPhaseEnd, Time: t0.Add(time.Millisecond), Phase: "prepare", Units: int64(time.Millisecond)},
		{Kind: obs.KindPhaseEnd, Time: t0.Add(2 * time.Millisecond), Phase: "forest", Units: int64(time.Millisecond)},
		{Kind: obs.KindTreeSolve, Tree: "a", Units: 10, Cost: 2, Dur: 200 * time.Microsecond},
		{Kind: obs.KindTreeSolve, Tree: "b", Units: 30, Cost: 3, Dur: 400 * time.Microsecond},
		{Kind: obs.KindMemoHit, Tree: "c", Cost: 2},
		{Kind: obs.KindTemplateReplay, Tree: "c"},
		{Kind: obs.KindBudgetExhausted, Tree: "d", Units: 100},
		{Kind: obs.KindTreeDegraded, Tree: "d", Cost: 5},
		{Kind: obs.KindLUT, Tree: "l1", N: 4, Depth: 1},
		{Kind: obs.KindLUT, Tree: "l2", N: 3, Depth: 2},
		{Kind: obs.KindArenaStats, N: 2, Units: 4096},
		{Kind: obs.KindDupAccepted, Tree: "g"},
		{Kind: obs.KindMapEnd, Time: t0.Add(10 * time.Millisecond), Cost: 9, Depth: 2, N: 4},
	}
}

func TestObserverBridge(t *testing.T) {
	reg := New()
	o := NewObserver(reg)
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	for _, e := range stream(t0) {
		o.Observe(e)
	}
	checks := map[string]float64{
		"chortle_maps_total":             1,
		"chortle_tree_solves_total":      2,
		"chortle_work_units_total":       40,
		"chortle_memo_hits_total":        1,
		"chortle_template_replays_total": 1,
		"chortle_budget_trips_total":     1,
		"chortle_degraded_trees_total":   1,
		"chortle_dup_accepted_total":     1,
		"chortle_luts_emitted_total":     2,
	}
	for name, want := range checks {
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := reg.Gauge("chortle_last_luts", "").Value(); got != 9 {
		t.Errorf("last luts = %v, want 9", got)
	}
	if got := reg.Gauge("chortle_arena_bytes", "").Value(); got != 4096 {
		t.Errorf("arena bytes = %v, want 4096", got)
	}
	// The run wall histogram caught the 10ms bracket.
	wall := reg.Histogram("chortle_map_wall_seconds", "", nil)
	if wall.Count() != 1 || wall.Sum() != 10*time.Millisecond {
		t.Errorf("map wall: count=%d sum=%s, want 1/10ms", wall.Count(), wall.Sum())
	}
	solve := reg.Histogram("chortle_solve_duration_seconds", "", nil)
	if solve.Count() != 2 || solve.Sum() != 600*time.Microsecond {
		t.Errorf("solve durations: count=%d sum=%s", solve.Count(), solve.Sum())
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	names := checkPromFormat(t, text)
	for _, want := range []string{
		"chortle_phase_duration_seconds_bucket",
		"chortle_memo_hit_rate",
		"chortle_degraded_trees_total",
	} {
		if !names[want] {
			t.Errorf("exposition missing %q", want)
		}
	}
	// hit rate = 1 / (1 + 2)
	if !strings.Contains(text, "chortle_memo_hit_rate 0.33") {
		t.Errorf("memo hit rate not exposed:\n%s", text)
	}
}

// TestObserverNestedBrackets pins the duplication-search shape: the
// inner map bracket does not produce a bogus whole-run wall sample.
func TestObserverNestedBrackets(t *testing.T) {
	reg := New()
	o := NewObserver(reg)
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	o.Observe(obs.Event{Kind: obs.KindMapStart, Time: t0, K: 4})
	o.Observe(obs.Event{Kind: obs.KindMapStart, Time: t0.Add(time.Millisecond), K: 4})
	o.Observe(obs.Event{Kind: obs.KindMapEnd, Time: t0.Add(2 * time.Millisecond), Cost: 5})
	o.Observe(obs.Event{Kind: obs.KindMapEnd, Time: t0.Add(8 * time.Millisecond), Cost: 5})
	wall := reg.Histogram("chortle_map_wall_seconds", "", nil)
	if wall.Count() != 1 {
		t.Fatalf("nested brackets produced %d wall samples, want 1 (outermost)", wall.Count())
	}
	if wall.Sum() != 8*time.Millisecond {
		t.Fatalf("wall sum = %s, want the outermost 8ms", wall.Sum())
	}
	if got := reg.Counter("chortle_maps_total", "").Value(); got != 2 {
		t.Fatalf("maps counter = %v, want 2 (both ends counted)", got)
	}
}

// TestObserverUnknownPhase covers the slow path: a phase name the
// bridge has never seen gets its own labeled series.
func TestObserverUnknownPhase(t *testing.T) {
	reg := New()
	o := NewObserver(reg)
	o.Observe(obs.Event{Kind: obs.KindPhaseEnd, Phase: "experimental", Units: int64(time.Millisecond)})
	h := reg.Histogram("chortle_phase_duration_seconds", "", nil, Label{"phase", "experimental"})
	if h.Count() != 1 {
		t.Fatalf("unknown phase not recorded: count=%d", h.Count())
	}
}

// TestObserverZeroAlloc is the acceptance pin for the metrics bridge:
// once constructed, folding any mapper-emitted event into the registry
// allocates nothing — the bridge may ride on the hot solve path of a
// parallel run without adding GC pressure.
func TestObserverZeroAlloc(t *testing.T) {
	reg := New()
	o := NewObserver(reg)
	t0 := time.Now()
	events := stream(t0)
	// Warm every path once (unknown-phase creation etc. happens here).
	for _, e := range events {
		o.Observe(e)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, e := range events {
			o.Observe(e)
		}
	})
	if allocs != 0 {
		t.Fatalf("metrics bridge allocated %v allocs per event batch, want 0", allocs)
	}
}

func TestRuntimeSampler(t *testing.T) {
	reg := New()
	s := NewRuntimeSampler(reg)
	s.Begin()
	// Do some allocating work and force a GC so the deltas move.
	sink := make([][]byte, 0, 256)
	for i := 0; i < 256; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	runtime.GC()
	_ = sink
	s.End()

	if got := reg.Counter("chortle_runtime_sampled_runs_total", "").Value(); got != 1 {
		t.Fatalf("sampled runs = %v, want 1", got)
	}
	if got := reg.Counter("chortle_run_alloc_bytes_total", "").Value(); got < 256*4096 {
		t.Errorf("run allocs = %v, want >= %d", got, 256*4096)
	}
	if got := reg.Counter("chortle_run_gc_cycles_total", "").Value(); got < 1 {
		t.Errorf("run gc cycles = %v, want >= 1 (runtime.GC forced one)", got)
	}
	if got := reg.Gauge("chortle_run_heap_bytes", "").Value(); got <= 0 {
		t.Errorf("heap gauge = %v, want > 0", got)
	}
	if got := reg.Gauge("chortle_run_goroutines", "").Value(); got < 1 {
		t.Errorf("goroutine gauge = %v, want >= 1", got)
	}

	// Nested brackets collapse; unmatched End is a no-op.
	s.Begin()
	s.Begin()
	s.End()
	s.End()
	s.End()
	if got := reg.Counter("chortle_runtime_sampled_runs_total", "").Value(); got != 2 {
		t.Fatalf("after nesting, sampled runs = %v, want 2", got)
	}

	// Process gauges are live at scrape time.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "chortle_process_goroutines") {
		t.Error("process goroutine gauge missing from exposition")
	}
	checkPromFormat(t, sb.String())
}
