package metrics

import (
	"sync"
	"time"

	"chortle/internal/obs"
)

// standardPhases are the pipeline phases the mapper emits today; the
// bridge pre-creates one duration histogram per phase so the per-event
// path is a read-only map hit. Unknown phases (future pipeline stages)
// fall back to a locked get-or-create — correctness over speed for
// names the bridge has never seen.
var standardPhases = []string{
	"prepare", "forest", "solve", "reconstruct", "finalize", "repack", "dup-search",
}

// Observer bridges the internal/obs event stream into a metrics
// Registry: counters for solves, memo hits, budget trips, degraded
// trees and accepted duplications; duration histograms for phases,
// per-tree solves and whole runs; gauges for the last run's circuit
// shape. It composes with other sinks through obs.Multi, tolerates
// concurrent emission (the parallel pipeline emits from workers), and
// its Observe path performs no allocation for any event the mapper
// emits — pinned by TestObserverZeroAlloc.
//
// When a RuntimeSampler is attached (AttachRuntimeSampler or
// NewObserverWithRuntime), map brackets additionally snapshot the Go
// runtime, recording per-run GC pause, GC cycle and allocation deltas.
type Observer struct {
	reg *Registry

	maps       *Counter
	mapWall    *Histogram
	phaseMu    sync.RWMutex
	phaseHists map[string]*Histogram
	phaseTot   map[string]*Counter

	solves     *Counter
	solveDur   *Histogram
	workUnits  *Counter
	memoHits   *Counter
	replays    *Counter
	budgetHits *Counter
	degraded   *Counter
	dups       *Counter
	luts       *Counter

	lastLUTs  *Gauge
	lastDepth *Gauge
	lastTrees *Gauge
	lastK     *Gauge

	cutsKept      *Counter
	cutsDominated *Counter
	cutEvictions  *Counter
	areaRounds    *Counter

	arenaCount *Gauge
	arenaBytes *Gauge

	// runStart supports the whole-run wall histogram without trusting
	// wall arithmetic across interleaved runs: brackets nest (the
	// duplication search maps inside its own bracket), so only the
	// outermost pair is timed.
	runMu    sync.Mutex
	runDepth int
	runStart time.Time

	sampler *RuntimeSampler
}

// NewObserver builds the bridge over reg, creating every metric series
// it will ever touch up front.
func NewObserver(reg *Registry) *Observer {
	o := &Observer{
		reg:           reg,
		maps:          reg.Counter("chortle_maps_total", "Completed mapping runs."),
		mapWall:       reg.Histogram("chortle_map_wall_seconds", "Wall time of whole mapping runs.", nil),
		phaseHists:    make(map[string]*Histogram, len(standardPhases)),
		phaseTot:      make(map[string]*Counter, len(standardPhases)),
		solves:        reg.Counter("chortle_tree_solves_total", "Per-tree DP solves executed."),
		solveDur:      reg.Histogram("chortle_solve_duration_seconds", "Wall time of per-tree DP solves.", nil),
		workUnits:     reg.Counter("chortle_work_units_total", "Governor-metered DP search work units."),
		memoHits:      reg.Counter("chortle_memo_hits_total", "Trees that reused another tree's DP solve."),
		replays:       reg.Counter("chortle_template_replays_total", "Trees emitted by replaying a recorded template."),
		budgetHits:    reg.Counter("chortle_budget_trips_total", "Solves that exhausted their search budget."),
		degraded:      reg.Counter("chortle_degraded_trees_total", "Trees remapped with bin packing after budget exhaustion."),
		dups:          reg.Counter("chortle_dup_accepted_total", "Profitable duplications committed by the cost-aware search."),
		luts:          reg.Counter("chortle_luts_emitted_total", "Lookup tables emitted across all runs."),
		lastLUTs:      reg.Gauge("chortle_last_luts", "LUT count of the last completed run."),
		lastDepth:     reg.Gauge("chortle_last_depth", "Circuit depth of the last completed run."),
		lastTrees:     reg.Gauge("chortle_last_trees", "Tree count of the last completed run."),
		lastK:         reg.Gauge("chortle_last_k", "LUT input count (K) of the last run started."),
		cutsKept:      reg.Counter("chortle_cuts_kept_total", "Cuts retained across priority lists by the cut engine."),
		cutsDominated: reg.Counter("chortle_cuts_dominated_total", "Candidate cuts removed by dominance pruning."),
		cutEvictions:  reg.Counter("chortle_cut_evictions_total", "Non-dominated cuts evicted beyond the priority-list bound."),
		areaRounds:    reg.Counter("chortle_area_flow_rounds_total", "Area-recovery iterations run by the cut engine."),
		arenaCount:    reg.Gauge("chortle_arena_count", "DP arenas checked out by the last run."),
		arenaBytes:    reg.Gauge("chortle_arena_bytes", "DP arena slab bytes held by the last run."),
	}
	for _, p := range standardPhases {
		o.phaseHists[p] = reg.Histogram("chortle_phase_duration_seconds",
			"Wall time of mapper pipeline phases.", nil, Label{"phase", p})
		o.phaseTot[p] = reg.Counter("chortle_phase_seconds_total",
			"Cumulative wall time per mapper pipeline phase.", Label{"phase", p})
	}
	reg.GaugeFunc("chortle_memo_hit_rate", "Fraction of trees that skipped their DP solve (hits / (hits + solves)).",
		func() float64 {
			h, s := o.memoHits.Value(), o.solves.Value()
			if h+s == 0 {
				return 0
			}
			return h / (h + s)
		})
	return o
}

// NewObserverWithRuntime is NewObserver plus an attached
// RuntimeSampler registered on the same registry.
func NewObserverWithRuntime(reg *Registry) *Observer {
	o := NewObserver(reg)
	o.AttachRuntimeSampler(NewRuntimeSampler(reg))
	return o
}

// AttachRuntimeSampler makes map brackets snapshot the Go runtime
// through s. Attach before the first observed run.
func (o *Observer) AttachRuntimeSampler(s *RuntimeSampler) { o.sampler = s }

// Registry returns the registry the bridge populates.
func (o *Observer) Registry() *Registry { return o.reg }

// phaseSeries returns the histogram/total pair for a phase, creating
// the series on first sight of a non-standard phase name.
func (o *Observer) phaseSeries(phase string) (*Histogram, *Counter) {
	o.phaseMu.RLock()
	h, t := o.phaseHists[phase], o.phaseTot[phase]
	o.phaseMu.RUnlock()
	if h != nil {
		return h, t
	}
	o.phaseMu.Lock()
	defer o.phaseMu.Unlock()
	if h = o.phaseHists[phase]; h != nil {
		return h, o.phaseTot[phase]
	}
	h = o.reg.Histogram("chortle_phase_duration_seconds",
		"Wall time of mapper pipeline phases.", nil, Label{"phase", phase})
	t = o.reg.Counter("chortle_phase_seconds_total",
		"Cumulative wall time per mapper pipeline phase.", Label{"phase", phase})
	o.phaseHists[phase] = h
	o.phaseTot[phase] = t
	return h, t
}

// Observe folds one mapping event into the registry.
func (o *Observer) Observe(e obs.Event) {
	switch e.Kind {
	case obs.KindMapStart:
		o.lastK.Set(float64(e.K))
		o.runMu.Lock()
		o.runDepth++
		if o.runDepth == 1 {
			o.runStart = e.Time
		}
		o.runMu.Unlock()
		if o.sampler != nil {
			o.sampler.Begin()
		}
	case obs.KindMapEnd:
		o.maps.Inc()
		o.lastLUTs.Set(float64(e.Cost))
		o.lastDepth.Set(float64(e.Depth))
		o.lastTrees.Set(float64(e.N))
		o.runMu.Lock()
		if o.runDepth > 0 {
			o.runDepth--
			if o.runDepth == 0 && !o.runStart.IsZero() && !e.Time.IsZero() {
				o.mapWall.Observe(e.Time.Sub(o.runStart))
			}
		}
		o.runMu.Unlock()
		if o.sampler != nil {
			o.sampler.End()
		}
	case obs.KindPhaseEnd:
		h, t := o.phaseSeries(e.Phase)
		d := time.Duration(e.Units)
		h.Observe(d)
		t.Add(d.Seconds())
	case obs.KindTreeSolve:
		o.solves.Inc()
		o.workUnits.Add(float64(e.Units))
		if e.Dur > 0 {
			o.solveDur.Observe(e.Dur)
		}
	case obs.KindMemoHit:
		o.memoHits.Inc()
	case obs.KindTemplateReplay:
		o.replays.Inc()
	case obs.KindBudgetExhausted:
		o.budgetHits.Inc()
	case obs.KindTreeDegraded:
		o.degraded.Inc()
	case obs.KindLUT:
		o.luts.Inc()
	case obs.KindArenaStats:
		o.arenaCount.Set(float64(e.N))
		o.arenaBytes.Set(float64(e.Units))
	case obs.KindDupAccepted:
		o.dups.Inc()
	case obs.KindCutsEnumerated:
		o.cutsKept.Add(float64(e.Units))
		o.cutsDominated.Add(float64(e.Cost))
	case obs.KindCutListEvict:
		o.cutEvictions.Add(float64(e.Units))
	case obs.KindAreaFlowRound:
		o.areaRounds.Inc()
	}
}
