package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// OpenMetricsContentType is the content type a scraper sends (in
// Accept) and the server returns for the OpenMetrics exposition.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders the registry in OpenMetrics-flavored text:
// the same families as WritePrometheus, plus per-bucket trace-ID
// exemplars on histogram _bucket lines and the terminal # EOF marker.
// The 0.0.4 writer is untouched — scrapers that don't negotiate
// OpenMetrics keep getting exactly the output they always did; this
// writer exists so a p99 spike in a latency histogram carries the
// trace ID of a request that landed in the slow bucket.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, s := range f.series {
			if f.kind == kindHistogram {
				writeOpenMetricsHistogram(bw, f.name, s)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.name, renderLabels(s.labels, "", ""), formatValue(s.value))
		}
	}
	fmt.Fprintf(bw, "# EOF\n")
	return bw.Flush()
}

func writeOpenMetricsHistogram(w io.Writer, name string, s snapshotSeries) {
	h := s.hist
	bucket := func(i int, le string, count uint64) {
		fmt.Fprintf(w, "%s_bucket%s %d", name, renderLabels(s.labels, "le", le), count)
		if i < len(h.exemplars) {
			if ex := h.exemplars[i]; ex != nil {
				fmt.Fprintf(w, " # {trace_id=\"%s\"} %s %s",
					escapeLabel(ex.traceID), formatValue(ex.value),
					strconv.FormatFloat(ex.unix, 'f', 3, 64))
			}
		}
		fmt.Fprintf(w, "\n")
	}
	for i, b := range h.bounds {
		bucket(i, formatValue(b), h.counts[i])
	}
	bucket(len(h.bounds), "+Inf", h.count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(s.labels, "", ""), formatValue(h.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.labels, "", ""), h.count)
}
