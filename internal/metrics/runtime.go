package metrics

import (
	rm "runtime/metrics"
	"sync"
)

// The runtime/metrics sample names the sampler reads. All exist in the
// Go version pinned by go.mod; readRuntime tolerates a missing one
// (KindBad) by reporting zero rather than failing.
const (
	rmGCPause    = "/cpu/classes/gc/pause:cpu-seconds" // cumulative
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGCCycles   = "/gc/cycles/total:gc-cycles" // cumulative
	rmAllocBytes = "/gc/heap/allocs:bytes"      // cumulative
)

// runtimeSnap is one point-in-time read of the sampled runtime state.
type runtimeSnap struct {
	gcPauseSeconds float64 // cumulative process GC pause
	heapBytes      float64
	goroutines     float64
	gcCycles       float64 // cumulative
	allocBytes     float64 // cumulative
}

// RuntimeSampler brackets mapping runs with runtime/metrics snapshots:
// Begin before a run, End after it. The deltas — bytes allocated, GC
// cycles completed and GC pause time suffered while mapping — feed
// run-scoped counters, and the end-of-run heap/goroutine state feeds
// gauges, so an operator can tell mapper-induced memory pressure from
// ambient process noise. Nested Begin/End pairs (the duplication
// search maps inside an outer bracket) collapse into the outermost
// pair. Safe for concurrent use.
type RuntimeSampler struct {
	mu      sync.Mutex
	depth   int
	begin   runtimeSnap
	samples []rm.Sample // reused across reads

	runs           *Counter
	runGCPause     *Counter
	runGCCycles    *Counter
	runAllocs      *Counter
	heapGauge      *Gauge
	goroutineGauge *Gauge
}

// NewRuntimeSampler registers the sampler's run-scoped metrics on reg
// and live process gauges (current goroutines, heap bytes, cumulative
// GC pause) computed fresh at scrape time via GaugeFunc.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	s := &RuntimeSampler{
		samples: []rm.Sample{
			{Name: rmGCPause},
			{Name: rmHeapBytes},
			{Name: rmGoroutines},
			{Name: rmGCCycles},
			{Name: rmAllocBytes},
		},
		runs:           reg.Counter("chortle_runtime_sampled_runs_total", "Mapping runs bracketed by the runtime sampler."),
		runGCPause:     reg.Counter("chortle_run_gc_pause_seconds_total", "GC pause time suffered inside mapping runs."),
		runGCCycles:    reg.Counter("chortle_run_gc_cycles_total", "GC cycles completed inside mapping runs."),
		runAllocs:      reg.Counter("chortle_run_alloc_bytes_total", "Heap bytes allocated inside mapping runs."),
		heapGauge:      reg.Gauge("chortle_run_heap_bytes", "Live heap bytes at the end of the last mapping run."),
		goroutineGauge: reg.Gauge("chortle_run_goroutines", "Goroutine count at the end of the last mapping run."),
	}
	reg.GaugeFunc("chortle_process_gc_pause_seconds_total", "Cumulative process GC pause time (runtime/metrics).",
		func() float64 { return readRuntimeOne(rmGCPause) })
	reg.GaugeFunc("chortle_process_goroutines", "Current goroutine count.",
		func() float64 { return readRuntimeOne(rmGoroutines) })
	reg.GaugeFunc("chortle_process_heap_bytes", "Current live heap bytes.",
		func() float64 { return readRuntimeOne(rmHeapBytes) })
	return s
}

// Begin snapshots the runtime at the start of a mapping run. Only the
// outermost Begin of a nested set samples.
func (s *RuntimeSampler) Begin() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.depth++
	if s.depth > 1 {
		return
	}
	s.begin = s.readLocked()
}

// End snapshots the runtime at the end of a mapping run and records
// the run-scoped deltas. Unmatched Ends are ignored.
func (s *RuntimeSampler) End() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.depth == 0 {
		return
	}
	s.depth--
	if s.depth > 0 {
		return
	}
	end := s.readLocked()
	s.runs.Inc()
	s.runGCPause.Add(end.gcPauseSeconds - s.begin.gcPauseSeconds)
	s.runGCCycles.Add(end.gcCycles - s.begin.gcCycles)
	s.runAllocs.Add(end.allocBytes - s.begin.allocBytes)
	s.heapGauge.Set(end.heapBytes)
	s.goroutineGauge.Set(end.goroutines)
}

// readLocked reads all samples with the reused slice (no allocation
// after the first call). Callers hold mu.
func (s *RuntimeSampler) readLocked() runtimeSnap {
	rm.Read(s.samples)
	var snap runtimeSnap
	for _, smp := range s.samples {
		v := sampleValue(smp)
		switch smp.Name {
		case rmGCPause:
			snap.gcPauseSeconds = v
		case rmHeapBytes:
			snap.heapBytes = v
		case rmGoroutines:
			snap.goroutines = v
		case rmGCCycles:
			snap.gcCycles = v
		case rmAllocBytes:
			snap.allocBytes = v
		}
	}
	return snap
}

// sampleValue flattens a runtime/metrics sample to float64; KindBad
// (name unknown to this runtime) reads as zero.
func sampleValue(s rm.Sample) float64 {
	switch s.Value.Kind() {
	case rm.KindUint64:
		return float64(s.Value.Uint64())
	case rm.KindFloat64:
		return s.Value.Float64()
	default:
		return 0
	}
}

// readRuntimeOne reads a single runtime/metrics sample — the scrape-
// time path of the process gauges, where a small allocation is fine.
func readRuntimeOne(name string) float64 {
	smp := []rm.Sample{{Name: name}}
	rm.Read(smp)
	return sampleValue(smp[0])
}

// LiveHeapBytes reads the current live heap size (heap object bytes)
// from runtime/metrics — the same sample the chortle_process_heap_bytes
// gauge scrapes. Servers use it as the input to memory-pressure valves.
func LiveHeapBytes() float64 { return readRuntimeOne(rmHeapBytes) }
