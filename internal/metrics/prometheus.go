package metrics

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE header per
// family, series contiguous under it, histograms expanded into
// cumulative _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, s := range f.series {
			if f.kind == kindHistogram {
				writeHistogram(bw, f.name, s)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.name, renderLabels(s.labels, "", ""), formatValue(s.value))
		}
	}
	return bw.Flush()
}

func writeHistogram(w io.Writer, name string, s snapshotSeries) {
	h := s.hist
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			renderLabels(s.labels, "le", formatValue(b)), h.counts[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name,
		renderLabels(s.labels, "le", "+Inf"), h.count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(s.labels, "", ""), formatValue(h.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.labels, "", ""), h.count)
}

// renderLabels formats a label set, optionally appending one extra
// pair (the histogram le bound), as {k="v",...}; empty sets render as
// nothing.
func renderLabels(labels []Label, extraKey, extraValue string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraValue))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// expvarPublished guards expvar.Publish, which panics on duplicate
// names; PublishExpvar must stay idempotent across CLI invocations in
// tests that construct several servers in one process.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]*Registry{}
)

// ExpvarVar adapts the registry to the expvar.Var interface: its
// String method renders every series as one JSON object, histograms as
// {count, sum_seconds, p50/p95/p99 seconds}.
func (r *Registry) ExpvarVar() expvar.Var {
	return expvar.Func(func() any {
		out := map[string]any{}
		for _, f := range r.snapshot() {
			for _, s := range f.series {
				key := f.name
				for _, l := range s.labels {
					key += ";" + l.Key + "=" + l.Value
				}
				if f.kind == kindHistogram {
					out[key] = map[string]any{
						"count":       s.hist.count,
						"sum_seconds": s.hist.sum,
					}
					continue
				}
				out[key] = s.value
			}
		}
		return out
	})
}

// PublishExpvar publishes the registry in the process-global expvar
// namespace under the given name (served by /debug/vars). Publishing
// the same registry under the same name again is a no-op; publishing a
// different registry under a taken name returns an error — expvar has
// no unpublish, so the slot is permanent.
func (r *Registry) PublishExpvar(name string) error {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if prev, ok := expvarPublished[name]; ok {
		if prev == r {
			return nil
		}
		return fmt.Errorf("metrics: expvar name %q already published by another registry", name)
	}
	expvar.Publish(name, r.ExpvarVar())
	expvarPublished[name] = r
	return nil
}
