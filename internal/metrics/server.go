package metrics

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the mapper's debug/observability endpoint: /metrics
// (Prometheus text exposition), /debug/vars (expvar, including the
// published registry), and the full net/http/pprof surface under
// /debug/pprof/. It binds its own mux — nothing leaks into
// http.DefaultServeMux — and serves on a side goroutine until Shutdown.
type Server struct {
	reg *Registry
	srv *http.Server
	ln  net.Listener

	mu     sync.Mutex
	err    error // first Serve error, if any (after Shutdown: ErrServerClosed is filtered)
	closed bool
	done   chan struct{}
}

// Serve starts the debug server on addr (host:port; :0 picks a free
// port — read it back from Addr). The registry is also published into
// the process expvar namespace under "chortle" on first use, so
// /debug/vars carries the same numbers as /metrics. The server runs on
// a side goroutine; stop it with Shutdown.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: debug server: %w", err)
	}
	// Best-effort: a second registry in the same process keeps its
	// /metrics endpoint but cannot take the expvar slot.
	_ = reg.PublishExpvar("chortle")

	s := &Server{reg: reg, ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		err := s.srv.Serve(ln)
		if err != nil && err != http.ErrServerClosed {
			s.mu.Lock()
			s.err = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// Addr returns the bound listen address (useful with :0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the server: in-flight requests get until
// the context deadline to finish, then the listener and connections
// close. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return s.err
	}
	s.closed = true
	s.mu.Unlock()
	err := s.srv.Shutdown(ctx)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
	return s.err
}
