package sop

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCofactorVar(t *testing.T) {
	// f = ab + a'c;  f|a=1 = b, f|a=0 = c.
	f := parse(3, [2][]int{{0, 1}, nil}, [2][]int{{2}, {0}})
	if got := f.CofactorVar(0, true); got.String() != "b" {
		t.Fatalf("f|a=1 = %v", got)
	}
	if got := f.CofactorVar(0, false); got.String() != "c" {
		t.Fatalf("f|a=0 = %v", got)
	}
}

func TestComplementSingleCube(t *testing.T) {
	f := parse(3, [2][]int{{0}, {1}}) // ab'
	c := f.Complement()
	for a := uint64(0); a < 8; a++ {
		if f.Eval(a) == c.Eval(a) {
			t.Fatalf("complement overlaps at %b", a)
		}
	}
}

func TestComplementProperty(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		f := randomSOP(rng, n, 10)
		c := f.Complement()
		for a := uint64(0); a < 1<<uint(n); a++ {
			if f.Eval(a) == c.Eval(a) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComplementConstants(t *testing.T) {
	if !Zero(3).Complement().IsOne() {
		t.Fatal("!0 != 1")
	}
	if !OneSOP(3).Complement().IsZero() {
		t.Fatal("!1 != 0")
	}
}

func TestSubstitute(t *testing.T) {
	// s = xa (x is var 2), g = b + c (vars 1 and 3... keep simple):
	// s over 4 vars: s = v2 & v0, g = v1 + v3.
	s := parse(4, [2][]int{{0, 2}, nil})
	g := parse(4, [2][]int{{1}, nil}, [2][]int{{3}, nil})
	got := s.Substitute(2, g)
	// expect a(b + d) = ab + ad
	want := parse(4, [2][]int{{0, 1}, nil}, [2][]int{{0, 3}, nil})
	want.Sort()
	if got.String() != want.String() {
		t.Fatalf("Substitute = %v, want %v", got, want)
	}
}

func TestSubstituteNegativePhase(t *testing.T) {
	// s = v1' & v0 where v1 := g = v2+v3 ; expect v0 v2' v3'.
	s := parse(4, [2][]int{{0}, {1}})
	g := parse(4, [2][]int{{2}, nil}, [2][]int{{3}, nil})
	got := s.Substitute(1, g)
	want := parse(4, [2][]int{{0}, {2, 3}})
	want.Sort()
	if got.String() != want.String() {
		t.Fatalf("Substitute = %v, want %v", got, want)
	}
}

func TestSubstituteProperty(t *testing.T) {
	// Substituting g for x_i must equal pointwise composition.
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		f := randomSOP(rng, n, 6)
		i := rng.Intn(n)
		g := randomSOP(rng, n, 4)
		// g must not depend on x_i for composition to be well defined.
		g = g.CofactorVar(i, rng.Intn(2) == 1)
		got := f.Substitute(i, g)
		for a := uint64(0); a < 1<<uint(n); a++ {
			var composed uint64
			if g.Eval(a) {
				composed = a | 1<<uint(i)
			} else {
				composed = a &^ (1 << uint(i))
			}
			if got.Eval(a) != f.Eval(composed) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
