package sop

import "math/bits"

// Boolean (non-algebraic) operations needed by node elimination in the
// optimizer: cofactoring and complementation. Complement uses the
// classic unate-recursive paradigm: split on the most frequent variable
// until the cover is a single cube (De Morgan) or constant.

// CofactorVar returns the Shannon cofactor of the cover with respect to
// variable i set to val. The result no longer mentions variable i.
func (s SOP) CofactorVar(i int, val bool) SOP {
	bit := uint64(1) << uint(i)
	out := SOP{NumVars: s.NumVars}
	for _, c := range s.Cubes {
		if val {
			if c.Neg&bit != 0 {
				continue // cube requires x_i = 0
			}
			c.Pos &^= bit
		} else {
			if c.Pos&bit != 0 {
				continue
			}
			c.Neg &^= bit
		}
		out.Cubes = append(out.Cubes, c)
	}
	return out
}

// mostFrequentVar picks the variable occurring in the most cubes,
// preferring binate ones (appearing in both phases), the standard
// unate-recursive splitting heuristic.
func (s SOP) mostFrequentVar() int {
	bestVar, bestScore := -1, -1
	for i := 0; i < s.NumVars; i++ {
		bit := uint64(1) << uint(i)
		pos, neg := 0, 0
		for _, c := range s.Cubes {
			if c.Pos&bit != 0 {
				pos++
			}
			if c.Neg&bit != 0 {
				neg++
			}
		}
		if pos+neg == 0 {
			continue
		}
		score := pos + neg
		if pos > 0 && neg > 0 {
			score += len(s.Cubes) // binate variables split best
		}
		if score > bestScore {
			bestScore, bestVar = score, i
		}
	}
	return bestVar
}

// Complement returns a cover of the Boolean complement of s.
// The result is containment-minimized but not guaranteed minimal.
func (s SOP) Complement() SOP {
	if s.IsZero() {
		return OneSOP(s.NumVars)
	}
	if s.IsOne() {
		return Zero(s.NumVars)
	}
	if len(s.Cubes) == 1 {
		// De Morgan on a single cube: one single-literal cube per literal.
		c := s.Cubes[0]
		out := SOP{NumVars: s.NumVars}
		for i := 0; i < s.NumVars; i++ {
			bit := uint64(1) << uint(i)
			if c.Pos&bit != 0 {
				out.Cubes = append(out.Cubes, Cube{Neg: bit})
			}
			if c.Neg&bit != 0 {
				out.Cubes = append(out.Cubes, Cube{Pos: bit})
			}
		}
		return out
	}
	j := s.mostFrequentVar()
	bit := uint64(1) << uint(j)
	c1 := s.CofactorVar(j, true).Complement()
	c0 := s.CofactorVar(j, false).Complement()
	out := SOP{NumVars: s.NumVars}
	for _, c := range c1.Cubes {
		out.Cubes = append(out.Cubes, c.Mul(Cube{Pos: bit}))
	}
	for _, c := range c0.Cubes {
		out.Cubes = append(out.Cubes, c.Mul(Cube{Neg: bit}))
	}
	out.MinimizeSCC()
	return out
}

// Substitute composes g into s at variable i: every occurrence of x_i in
// s is replaced by the function g (and x_i' by g's complement), where g
// is expressed over the same variable space as s. The result no longer
// depends on variable i (assuming g does not).
func (s SOP) Substitute(i int, g SOP) SOP {
	gc := g.Complement()
	out := SOP{NumVars: s.NumVars}
	bit := uint64(1) << uint(i)
	for _, c := range s.Cubes {
		rest := SOP{NumVars: s.NumVars, Cubes: []Cube{{Pos: c.Pos &^ bit, Neg: c.Neg &^ bit}}}
		switch {
		case c.Pos&bit != 0:
			rest = rest.Mul(g)
		case c.Neg&bit != 0:
			rest = rest.Mul(gc)
		}
		out = out.Add(rest)
	}
	out.MinimizeSCC()
	return out
}

// SupportSize returns the number of variables mentioned by the cover.
func (s SOP) SupportSize() int { return bits.OnesCount64(s.Vars()) }
