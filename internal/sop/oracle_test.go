package sop

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoverFromOracleEquivalence(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		table := make([]bool, 1<<uint(n))
		for i := range table {
			table[i] = rng.Intn(2) == 1
		}
		cover := CoverFromOracle(n, func(m uint64) bool { return table[m] })
		for m := uint64(0); m < 1<<uint(n); m++ {
			if cover.Eval(m) != table[m] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoverFromOracleExpandsPrimes(t *testing.T) {
	// f = a (independent of b, c): the cover must be the single literal.
	cover := CoverFromOracle(3, func(m uint64) bool { return m&1 == 1 })
	if len(cover.Cubes) != 1 || cover.Cubes[0].Literals() != 1 {
		t.Fatalf("cover = %v, want the single cube a", cover)
	}
	// Constant one: the universal cube.
	one := CoverFromOracle(4, func(uint64) bool { return true })
	if !one.IsOne() {
		t.Fatalf("constant-one cover = %v", one)
	}
	// Constant zero: empty.
	zero := CoverFromOracle(4, func(uint64) bool { return false })
	if !zero.IsZero() {
		t.Fatalf("constant-zero cover = %v", zero)
	}
}

func TestCoverFromOracleParityIsMinterms(t *testing.T) {
	// Parity admits no expansion: every cube stays a full minterm.
	n := 4
	cover := CoverFromOracle(n, func(m uint64) bool {
		return bits.OnesCount64(m)%2 == 1
	})
	if len(cover.Cubes) != 8 {
		t.Fatalf("parity cover has %d cubes, want 8", len(cover.Cubes))
	}
	for _, c := range cover.Cubes {
		if c.Literals() != n {
			t.Fatalf("parity cube %v expanded", c)
		}
	}
}

func TestCoverFromOracleRejectsWideN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n > 24")
		}
	}()
	CoverFromOracle(25, func(uint64) bool { return false })
}

func TestSOPHelpers(t *testing.T) {
	a := PosLit(0, 3)
	b := NegLit(1, 3)
	if a.Literals() != 1 || b.Literals() != 1 {
		t.Fatal("literal SOPs wrong")
	}
	if a.Vars() != 1 || b.Vars() != 2 {
		t.Fatalf("Vars masks wrong: %b %b", a.Vars(), b.Vars())
	}
	sum := a.Add(b)
	if sum.SupportSize() != 2 {
		t.Fatalf("SupportSize = %d", sum.SupportSize())
	}
	if !sum.Equal(b.Add(a)) {
		t.Fatal("Equal should be order-insensitive")
	}
	if sum.Equal(a) {
		t.Fatal("Equal false positive")
	}
	viaNew := New(3, Cube{Pos: 1}, Cube{Neg: 2}, Cube{Pos: 4, Neg: 4})
	if len(viaNew.Cubes) != 2 {
		t.Fatal("New should drop contradictory cubes")
	}
	if !viaNew.Equal(sum) {
		t.Fatalf("New cover %v != %v", viaNew, sum)
	}
}
