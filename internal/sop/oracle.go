package sop

// Two-level synthesis from a functional oracle — an espresso-style
// EXPAND pass. The MCNC PLA benchmarks (9sym, alu2, alu4, ...) are
// two-level covers produced by espresso from behavioural tables; this
// reproduces that flow so the benchmark suite can derive its circuits
// from behaviour instead of unavailable .pla files. The cover is built
// by scanning minterms, greedily expanding each uncovered minterm into
// a prime-ish cube (dropping literals while the expanded cube stays
// inside the on-set), and skipping minterms already covered.

// CoverFromOracle builds an SOP cover of the n-variable function given
// by the on-set oracle. n is limited to 24 (the scan is exhaustive over
// 2^n minterms). The result is equivalent to the oracle and
// containment-reduced, though not guaranteed minimal.
func CoverFromOracle(n int, onset func(m uint64) bool) SOP {
	if n < 0 || n > 24 {
		panic("sop: CoverFromOracle supports at most 24 variables")
	}
	out := SOP{NumVars: n}
	var chosen []Cube
	total := uint64(1) << uint(n)
	// Precompute the on-set as a bitset: cube expansion probes the
	// oracle heavily (every minterm of every candidate cube), so one
	// exhaustive pass up front amortizes to a bit test per probe.
	onbits := make([]uint64, (total+63)/64)
	for m := uint64(0); m < total; m++ {
		if onset(m) {
			onbits[m>>6] |= 1 << (m & 63)
		}
	}
	on := func(m uint64) bool { return onbits[m>>6]>>(m&63)&1 == 1 }
	// covered tracks minterms already inside a chosen cube, so the scan
	// is O(1) per minterm instead of O(cubes).
	covered := make([]uint64, (total+63)/64)
	isCovered := func(m uint64) bool { return covered[m>>6]>>(m&63)&1 == 1 }
	for m := uint64(0); m < total; m++ {
		if isCovered(m) || !on(m) {
			continue
		}
		// Start from the minterm cube and drop literals greedily.
		var c Cube
		for i := 0; i < n; i++ {
			if m>>uint(i)&1 == 1 {
				c.Pos |= 1 << uint(i)
			} else {
				c.Neg |= 1 << uint(i)
			}
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if c.Pos&bit == 0 && c.Neg&bit == 0 {
				continue
			}
			cand := Cube{Pos: c.Pos &^ bit, Neg: c.Neg &^ bit}
			if cubeInOnset(cand, n, on) {
				c = cand
			}
		}
		chosen = append(chosen, c)
		forEachMinterm(c, n, func(mm uint64) { covered[mm>>6] |= 1 << (mm & 63) })
	}
	out.Cubes = chosen
	out.MinimizeSCC()
	return out
}

// forEachMinterm visits every minterm of the cube.
func forEachMinterm(c Cube, n int, visit func(uint64)) {
	var free []int
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		if c.Pos&bit == 0 && c.Neg&bit == 0 {
			free = append(free, i)
		}
	}
	total := uint64(1) << uint(len(free))
	for x := uint64(0); x < total; x++ {
		m := c.Pos
		for j, v := range free {
			if x>>uint(j)&1 == 1 {
				m |= 1 << uint(v)
			}
		}
		visit(m)
	}
}

// cubeInOnset reports whether every minterm of the cube satisfies the
// oracle, enumerating only the cube's free variables and bailing on the
// first off-set point.
func cubeInOnset(c Cube, n int, onset func(uint64) bool) bool {
	var free []int
	base := c.Pos
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		if c.Pos&bit == 0 && c.Neg&bit == 0 {
			free = append(free, i)
		}
	}
	total := uint64(1) << uint(len(free))
	for x := uint64(0); x < total; x++ {
		m := base
		for j, v := range free {
			if x>>uint(j)&1 == 1 {
				m |= 1 << uint(v)
			}
		}
		if !onset(m) {
			return false
		}
	}
	return true
}
