package sop

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mkCube builds a cube from positive and negative variable index lists.
func mkCube(pos, neg []int) Cube {
	var c Cube
	for _, i := range pos {
		c.Pos |= 1 << uint(i)
	}
	for _, i := range neg {
		c.Neg |= 1 << uint(i)
	}
	return c
}

// parse builds an SOP over n vars from (pos, neg) literal lists per cube.
func parse(n int, cubes ...[2][]int) SOP {
	s := SOP{NumVars: n}
	for _, cu := range cubes {
		s.Cubes = append(s.Cubes, mkCube(cu[0], cu[1]))
	}
	return s
}

func randomSOP(rng *rand.Rand, n, maxCubes int) SOP {
	s := SOP{NumVars: n}
	seen := map[Cube]bool{}
	for i := 0; i < 1+rng.Intn(maxCubes); i++ {
		var c Cube
		for v := 0; v < n; v++ {
			switch rng.Intn(3) {
			case 0:
				c.Pos |= 1 << uint(v)
			case 1:
				c.Neg |= 1 << uint(v)
			}
		}
		if c.Contradictory() || seen[c] {
			continue
		}
		seen[c] = true
		s.Cubes = append(s.Cubes, c)
	}
	if len(s.Cubes) == 0 {
		s.Cubes = append(s.Cubes, Cube{Pos: 1})
	}
	s.Sort()
	return s
}

func TestCubeBasics(t *testing.T) {
	c := mkCube([]int{0, 2}, []int{1}) // a b' c
	if c.Literals() != 3 {
		t.Fatalf("Literals = %d", c.Literals())
	}
	if c.String() != "ab'c" {
		t.Fatalf("String = %q", c.String())
	}
	if !c.Eval(0b101) || c.Eval(0b111) || c.Eval(0b001) {
		t.Fatal("Eval wrong")
	}
	d := mkCube([]int{0}, []int{1})
	if !c.HasAllOf(d) || d.HasAllOf(c) {
		t.Fatal("HasAllOf wrong")
	}
	if c.Div(d) != mkCube([]int{2}, nil) {
		t.Fatal("Div wrong")
	}
	if d.Mul(mkCube([]int{2}, nil)) != c {
		t.Fatal("Mul wrong")
	}
	bad := Cube{Pos: 1, Neg: 1}
	if !bad.Contradictory() {
		t.Fatal("contradiction not detected")
	}
	if One.Literals() != 0 || One.String() != "1" {
		t.Fatal("One wrong")
	}
}

func TestEvalWideMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(6)
		s := randomSOP(rng, n, 6)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64()
		}
		wide := s.EvalWide(vals)
		for b := 0; b < 64; b++ {
			var assign uint64
			for i := range vals {
				if vals[i]>>uint(b)&1 == 1 {
					assign |= 1 << uint(i)
				}
			}
			if s.Eval(assign) != (wide>>uint(b)&1 == 1) {
				t.Fatalf("EvalWide bit %d disagrees with Eval for %v", b, s)
			}
		}
	}
}

func TestMinimizeSCC(t *testing.T) {
	// ab + a -> a;  duplicate cubes collapse.
	s := parse(2, [2][]int{{0, 1}, nil}, [2][]int{{0}, nil}, [2][]int{{0}, nil})
	s.MinimizeSCC()
	if len(s.Cubes) != 1 || s.Cubes[0] != mkCube([]int{0}, nil) {
		t.Fatalf("MinimizeSCC got %v", s)
	}
}

func TestMinimizeSCCPreservesFunction(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		s := randomSOP(rng, n, 8)
		m := s.Clone()
		m.MinimizeSCC()
		for a := uint64(0); a < 1<<uint(n); a++ {
			if s.Eval(a) != m.Eval(a) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommonCubeAndCubeFree(t *testing.T) {
	// abc + abd = ab(c + d)
	s := parse(4, [2][]int{{0, 1, 2}, nil}, [2][]int{{0, 1, 3}, nil})
	cc := s.CommonCube()
	if cc != mkCube([]int{0, 1}, nil) {
		t.Fatalf("CommonCube = %v", cc)
	}
	if s.IsCubeFree() {
		t.Fatal("should not be cube-free")
	}
	free, got := s.MakeCubeFree()
	if got != cc || !free.IsCubeFree() {
		t.Fatal("MakeCubeFree wrong")
	}
	if free.String() != "c + d" {
		t.Fatalf("free = %v", free)
	}
}

func TestDivCube(t *testing.T) {
	// (abc + abd + e) / ab = (c + d), remainder e
	s := parse(5, [2][]int{{0, 1, 2}, nil}, [2][]int{{0, 1, 3}, nil}, [2][]int{{4}, nil})
	q, r := s.DivCube(mkCube([]int{0, 1}, nil))
	if q.String() != "c + d" || r.String() != "e" {
		t.Fatalf("q=%v r=%v", q, r)
	}
}

func TestAlgebraicDivisionTextbook(t *testing.T) {
	// f = ac + ad + bc + bd + e; d = a + b  =>  q = c + d(var), r = e.
	f := parse(5,
		[2][]int{{0, 2}, nil}, [2][]int{{0, 3}, nil},
		[2][]int{{1, 2}, nil}, [2][]int{{1, 3}, nil},
		[2][]int{{4}, nil})
	d := parse(5, [2][]int{{0}, nil}, [2][]int{{1}, nil}) // a + b
	q, r := f.Div(d)
	if q.String() != "c + d" {
		t.Fatalf("quotient = %v", q)
	}
	if r.String() != "e" {
		t.Fatalf("remainder = %v", r)
	}
}

func TestDivisionIdentityProperty(t *testing.T) {
	// f == d*q + r as cube sets, for random f and divisors drawn from
	// f's own kernels (the interesting case) and random covers.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		f := randomSOP(rng, n, 8)
		f.MinimizeSCC()
		var d SOP
		if ks := f.Kernels(); len(ks) > 0 && rng.Intn(2) == 0 {
			d = ks[rng.Intn(len(ks))].K
		} else {
			d = randomSOP(rng, n, 3)
		}
		q, r := f.Div(d)
		rebuilt := d.Mul(q).Add(r)
		rebuilt.Sort()
		fs := f.Clone()
		fs.Sort()
		if rebuilt.String() != fs.String() {
			t.Fatalf("trial %d: f=%v d=%v q=%v r=%v rebuilt=%v", trial, f, d, q, r, rebuilt)
		}
		// The quotient must never mention a variable of the divisor cube
		// structure in a way that re-expands; functional equality check:
		for a := uint64(0); a < 1<<uint(n); a++ {
			if f.Eval(a) != rebuilt.Eval(a) {
				t.Fatalf("functional mismatch at %b", a)
			}
		}
	}
}

func TestDivByZeroAndOne(t *testing.T) {
	f := parse(2, [2][]int{{0}, nil})
	q, r := f.Div(Zero(2))
	if !q.IsZero() || r.String() != f.String() {
		t.Fatal("division by zero should yield zero quotient")
	}
	q, r = f.Div(OneSOP(2))
	if !q.IsZero() || r.String() != f.String() {
		t.Fatal("division by trivial one should yield zero quotient")
	}
}

func TestKernelsTextbook(t *testing.T) {
	// f = adf + aef + bdf + bef + cdf + cef + g
	//   = (a+b+c)(d+e)f + g. Classic example: level-0 kernels a+b+c and
	//   d+e; the expanded (a+b+c)(d+e) and f itself are kernels too.
	mk := func(vars ...int) [2][]int { return [2][]int{vars, nil} }
	f := parse(7,
		mk(0, 3, 5), mk(0, 4, 5),
		mk(1, 3, 5), mk(1, 4, 5),
		mk(2, 3, 5), mk(2, 4, 5),
		mk(6))
	ks := f.Kernels()
	byStr := map[string]bool{}
	for _, k := range ks {
		byStr[k.K.String()] = true
		if !k.K.IsCubeFree() {
			t.Fatalf("kernel %v not cube-free", k.K)
		}
	}
	for _, want := range []string{"a + b + c", "d + e"} {
		if !byStr[want] {
			t.Fatalf("missing kernel %q in %v", want, byStr)
		}
	}
	// f itself is cube-free (g shares nothing) so it must appear.
	fsort := f.Clone()
	fsort.Sort()
	if !byStr[fsort.String()] {
		t.Fatalf("cover itself missing from kernels: %v", byStr)
	}
	// Level-0 filter keeps exactly the two disjoint-support kernels
	// plus none of the expanded ones.
	l0 := f.Level0Kernels()
	l0set := map[string]bool{}
	for _, k := range l0 {
		l0set[k.K.String()] = true
		if !k.K.IsLevel0Kernel() {
			t.Fatalf("%v claimed level-0 but is not", k.K)
		}
	}
	if !l0set["a + b + c"] || !l0set["d + e"] {
		t.Fatalf("level-0 kernels = %v", l0set)
	}
	if l0set[fsort.String()] {
		t.Fatal("expanded product misclassified as level-0")
	}
}

func TestKernelCoKernelProperty(t *testing.T) {
	// Every (kernel, co-kernel) pair must satisfy: co*K is a subset of
	// the cover's cubes, and K is cube-free with >= 2 cubes.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(5)
		f := randomSOP(rng, n, 8)
		f.MinimizeSCC()
		inF := map[Cube]bool{}
		for _, c := range f.Cubes {
			inF[c] = true
		}
		for _, k := range f.Kernels() {
			if len(k.K.Cubes) < 2 {
				t.Fatalf("kernel with <2 cubes: %v", k.K)
			}
			if !k.K.IsCubeFree() {
				t.Fatalf("kernel not cube-free: %v", k.K)
			}
			for _, c := range k.K.MulCube(k.CoKernel).Cubes {
				if !inF[c] {
					t.Fatalf("trial %d: co*K cube %v not in f=%v (K=%v co=%v)",
						trial, c, f, k.K, k.CoKernel)
				}
			}
		}
	}
}

func TestIsLevel0Kernel(t *testing.T) {
	cases := []struct {
		name string
		s    SOP
		want bool
	}{
		{"a + b", parse(3, [2][]int{{0}, nil}, [2][]int{{1}, nil}), true},
		{"a + bc", parse(3, [2][]int{{0}, nil}, [2][]int{{1, 2}, nil}), true},
		{"ab + cd", parse(4, [2][]int{{0, 1}, nil}, [2][]int{{2, 3}, nil}), true},
		{"ab + ac (a repeats)", parse(3, [2][]int{{0, 1}, nil}, [2][]int{{0, 2}, nil}), false},
		{"a + a' (distinct literals)", parse(3, [2][]int{{0}, nil}, [2][]int{nil, {0}}), true},
		{"single cube", parse(3, [2][]int{{0}, nil}), false},
		{"not cube-free: ab + ac + a", parse(3, [2][]int{{0, 1}, nil}, [2][]int{{0, 2}, nil}, [2][]int{{0}, nil}), false},
	}
	for _, c := range cases {
		if got := c.s.IsLevel0Kernel(); got != c.want {
			t.Errorf("%s: IsLevel0Kernel = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := parse(3, [2][]int{{0, 1}, nil}, [2][]int{nil, {2}})
	s.Sort()
	// Canonical order sorts by positive-literal mask first, so the
	// purely-negative cube c' precedes ab.
	if s.String() != "c' + ab" {
		t.Fatalf("String = %q", s.String())
	}
	if Zero(2).String() != "0" || !OneSOP(2).IsOne() {
		t.Fatal("constants render wrong")
	}
}

func BenchmarkKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	covers := make([]SOP, 32)
	for i := range covers {
		covers[i] = randomSOP(rng, 8, 12)
		covers[i].MinimizeSCC()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = covers[i%len(covers)].Kernels()
	}
}

func BenchmarkDivision(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	f := randomSOP(rng, 10, 20)
	d := randomSOP(rng, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = f.Div(d)
	}
}
