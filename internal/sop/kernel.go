package sop

import "fmt"

// Kernel extraction, after Brayton & McMullen. A kernel of f is a
// cube-free quotient of f by a cube (its co-kernel). Level-0 kernels —
// kernels having no kernels but themselves, equivalently covers in which
// no literal appears in more than one cube — are the leaf structures the
// paper's Section 4.1 uses to build the incomplete K=4 and K=5 MIS
// libraries.

// Kernel pairs a kernel cover with one of its co-kernels.
type Kernel struct {
	K        SOP
	CoKernel Cube
}

// litCube returns the single-literal cube for literal index j, where
// indices 0..n-1 are positive literals and n..2n-1 negative ones.
func litCube(j, n int) Cube {
	if j < n {
		return Cube{Pos: 1 << uint(j)}
	}
	return Cube{Neg: 1 << uint(j-n)}
}

// hasLitBelow reports whether cube c contains any literal with index < j.
func hasLitBelow(c Cube, j, n int) bool {
	for i := 0; i < j && i < 2*n; i++ {
		if c.HasAllOf(litCube(i, n)) {
			return true
		}
	}
	return false
}

// key produces a canonical map key for a sorted cover.
func (s SOP) key() string {
	cp := s.Clone()
	cp.Sort()
	out := make([]byte, 0, len(cp.Cubes)*16)
	for _, c := range cp.Cubes {
		out = append(out, fmt.Sprintf("%x.%x;", c.Pos, c.Neg)...)
	}
	return string(out)
}

// Kernels enumerates all kernels of the cover with one co-kernel each.
// The cube-free part of the cover itself is included (with its common
// cube as co-kernel). Duplicated kernels reached through different
// literal orders are reported once.
func (s SOP) Kernels() []Kernel {
	f, cc := s.MakeCubeFree()
	seen := map[string]bool{}
	var out []Kernel
	add := func(k SOP, co Cube) {
		if len(k.Cubes) < 2 {
			return // a single cube is not a kernel
		}
		k = k.Clone()
		k.Sort()
		id := k.key()
		if seen[id] {
			return
		}
		seen[id] = true
		out = append(out, Kernel{K: k, CoKernel: co})
	}
	add(f, cc)
	var rec func(g SOP, co Cube, minLit int)
	rec = func(g SOP, co Cube, minLit int) {
		n := g.NumVars
		for j := minLit; j < 2*n; j++ {
			lc := litCube(j, n)
			// Gather the cubes containing literal j.
			var withLit []Cube
			for _, c := range g.Cubes {
				if c.HasAllOf(lc) {
					withLit = append(withLit, c)
				}
			}
			if len(withLit) < 2 {
				continue
			}
			// The co-kernel extension is the largest cube common to them.
			ext := withLit[0]
			for _, c := range withLit[1:] {
				ext = ext.Common(c)
			}
			if hasLitBelow(ext, j, n) {
				continue // this kernel is found at the earlier literal
			}
			q, _ := g.DivCube(ext)
			q.Sort()
			add(q, co.Mul(ext))
			rec(q, co.Mul(ext), j+1)
		}
	}
	rec(f, cc, 0)
	return out
}

// IsLevel0Kernel reports whether the cover is a level-0 kernel: it is
// cube-free, has at least two cubes, and no literal appears in more than
// one cube (so it has no kernels other than itself).
func (s SOP) IsLevel0Kernel() bool {
	if len(s.Cubes) < 2 || !s.IsCubeFree() {
		return false
	}
	var seenPos, seenNeg uint64
	for _, c := range s.Cubes {
		if c.Pos&seenPos != 0 || c.Neg&seenNeg != 0 {
			return false
		}
		seenPos |= c.Pos
		seenNeg |= c.Neg
	}
	return true
}

// Level0Kernels filters Kernels down to the level-0 ones.
func (s SOP) Level0Kernels() []Kernel {
	var out []Kernel
	for _, k := range s.Kernels() {
		if k.K.IsLevel0Kernel() {
			out = append(out, k)
		}
	}
	return out
}
