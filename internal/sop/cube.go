// Package sop implements two-level sum-of-products algebra: cubes,
// covers, algebraic (weak) division, and kernel/co-kernel extraction.
// It is the engine behind the mini-MIS logic optimizer (internal/opt)
// that prepares networks for mapping, and behind the level-0-kernel
// library construction of the paper's Section 4.1: "The logic
// optimization step in MIS finds a factored form for the network that
// minimizes the literal count. Such a network contains only level-0
// kernels in the leaf nodes."
//
// Variables are indices 0..NumVars-1 into a node's fanin list; a cube
// stores its positive and negative literal sets as bitmasks, limiting a
// single SOP to 64 variables (far beyond what optimized nodes use).
package sop

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxVars bounds the variables of one SOP, set by the uint64 literal masks.
const MaxVars = 64

// Cube is a product term: a conjunction of literals. Bit i of Pos means
// variable i appears positively; bit i of Neg, negatively. A cube with
// both bits set for some variable is contradictory (always false); the
// empty cube is the Boolean constant one.
type Cube struct {
	Pos, Neg uint64
}

// One is the empty cube, the constant-true product.
var One = Cube{}

// Contradictory reports whether the cube contains x and !x for some x.
func (c Cube) Contradictory() bool { return c.Pos&c.Neg != 0 }

// Literals returns the number of literals in the cube.
func (c Cube) Literals() int { return bits.OnesCount64(c.Pos) + bits.OnesCount64(c.Neg) }

// Vars returns the mask of variables the cube mentions.
func (c Cube) Vars() uint64 { return c.Pos | c.Neg }

// HasAllOf reports whether every literal of d also appears in c
// (i.e. c is divisible by the cube d; as point sets, c implies d).
func (c Cube) HasAllOf(d Cube) bool { return c.Pos&d.Pos == d.Pos && c.Neg&d.Neg == d.Neg }

// Div removes d's literals from c. Valid only when c.HasAllOf(d).
func (c Cube) Div(d Cube) Cube { return Cube{Pos: c.Pos &^ d.Pos, Neg: c.Neg &^ d.Neg} }

// Mul concatenates the literals of two cubes (algebraic product).
func (c Cube) Mul(d Cube) Cube { return Cube{Pos: c.Pos | d.Pos, Neg: c.Neg | d.Neg} }

// Common returns the largest cube dividing both c and d.
func (c Cube) Common(d Cube) Cube { return Cube{Pos: c.Pos & d.Pos, Neg: c.Neg & d.Neg} }

// Eval evaluates the cube on an assignment given as a bitmask of
// variable values.
func (c Cube) Eval(assign uint64) bool {
	return assign&c.Pos == c.Pos && ^assign&c.Neg == c.Neg
}

// EvalWide evaluates the cube on 64 assignments in parallel: vals[i] is
// the word of variable i's values.
func (c Cube) EvalWide(vals []uint64) uint64 {
	w := ^uint64(0)
	for i := 0; w != 0 && i < len(vals); i++ {
		if c.Pos>>uint(i)&1 == 1 {
			w &= vals[i]
		}
		if c.Neg>>uint(i)&1 == 1 {
			w &= ^vals[i]
		}
	}
	return w
}

// String renders the cube with letters for small indices ("ab'c"); the
// empty cube renders as "1".
func (c Cube) String() string {
	if c.Pos == 0 && c.Neg == 0 {
		return "1"
	}
	var sb strings.Builder
	for i := 0; i < MaxVars; i++ {
		if c.Pos>>uint(i)&1 == 1 {
			sb.WriteString(varName(i))
		}
		if c.Neg>>uint(i)&1 == 1 {
			sb.WriteString(varName(i))
			sb.WriteByte('\'')
		}
	}
	return sb.String()
}

func varName(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return fmt.Sprintf("x%d", i)
}

// compare orders cubes lexicographically for canonical cover ordering.
func (c Cube) compare(d Cube) int {
	switch {
	case c.Pos != d.Pos:
		if c.Pos < d.Pos {
			return -1
		}
		return 1
	case c.Neg != d.Neg:
		if c.Neg < d.Neg {
			return -1
		}
		return 1
	}
	return 0
}

// SOP is a cover: the disjunction of its cubes over NumVars variables.
// An empty cube list is the constant zero; a cover containing the empty
// cube is (after minimization) the constant one.
type SOP struct {
	NumVars int
	Cubes   []Cube
}

// New returns an SOP over n variables with the given cubes.
// Contradictory cubes are dropped.
func New(n int, cubes ...Cube) SOP {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("sop: %d variables out of range", n))
	}
	s := SOP{NumVars: n}
	for _, c := range cubes {
		if !c.Contradictory() {
			s.Cubes = append(s.Cubes, c)
		}
	}
	return s
}

// Zero returns the constant-false SOP over n variables.
func Zero(n int) SOP { return SOP{NumVars: n} }

// OneSOP returns the constant-true SOP over n variables.
func OneSOP(n int) SOP { return SOP{NumVars: n, Cubes: []Cube{One}} }

// PosLit returns the single-literal SOP x_i.
func PosLit(i, n int) SOP { return New(n, Cube{Pos: 1 << uint(i)}) }

// NegLit returns the single-literal SOP x_i'.
func NegLit(i, n int) SOP { return New(n, Cube{Neg: 1 << uint(i)}) }

// IsZero reports whether the cover is empty (constant false).
func (s SOP) IsZero() bool { return len(s.Cubes) == 0 }

// IsOne reports whether the cover contains the universal cube.
func (s SOP) IsOne() bool {
	for _, c := range s.Cubes {
		if c == One {
			return true
		}
	}
	return false
}

// Literals returns the total literal count, the MIS area estimate.
func (s SOP) Literals() int {
	n := 0
	for _, c := range s.Cubes {
		n += c.Literals()
	}
	return n
}

// Vars returns the mask of variables the cover mentions.
func (s SOP) Vars() uint64 {
	var v uint64
	for _, c := range s.Cubes {
		v |= c.Vars()
	}
	return v
}

// Clone returns a deep copy.
func (s SOP) Clone() SOP {
	return SOP{NumVars: s.NumVars, Cubes: append([]Cube(nil), s.Cubes...)}
}

// Eval evaluates the cover on one assignment bitmask.
func (s SOP) Eval(assign uint64) bool {
	for _, c := range s.Cubes {
		if c.Eval(assign) {
			return true
		}
	}
	return false
}

// EvalWide evaluates on 64 assignments in parallel.
func (s SOP) EvalWide(vals []uint64) uint64 {
	var w uint64
	for _, c := range s.Cubes {
		w |= c.EvalWide(vals)
	}
	return w
}

// Sort orders the cubes canonically, in place.
func (s *SOP) Sort() {
	sort.Slice(s.Cubes, func(i, j int) bool { return s.Cubes[i].compare(s.Cubes[j]) < 0 })
}

// MinimizeSCC removes single-cube-contained cubes (a cube covered by a
// larger cube of the cover) and exact duplicates, in place. This is the
// cheap containment minimization MIS applies constantly; it does not
// attempt multi-cube (tautology-based) containment.
func (s *SOP) MinimizeSCC() {
	kept := s.Cubes[:0]
	for i, c := range s.Cubes {
		redundant := false
		for j, d := range s.Cubes {
			if i == j {
				continue
			}
			// c is redundant if d ⊆ c as literal sets (d covers c),
			// breaking ties by index to keep one of two equal cubes.
			if c.HasAllOf(d) && (c != d || j < i) {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, c)
		}
	}
	s.Cubes = kept
	s.Sort()
}

// CommonCube returns the largest cube dividing every cube of the cover
// (the trivial cube if the cover is empty or cube-free).
func (s SOP) CommonCube() Cube {
	if len(s.Cubes) == 0 {
		return One
	}
	c := s.Cubes[0]
	for _, d := range s.Cubes[1:] {
		c = c.Common(d)
	}
	return c
}

// IsCubeFree reports whether no single literal divides the whole cover.
func (s SOP) IsCubeFree() bool { return s.CommonCube() == One }

// MakeCubeFree divides out the largest common cube, returning the
// cube-free cover and the extracted cube.
func (s SOP) MakeCubeFree() (SOP, Cube) {
	cc := s.CommonCube()
	if cc == One {
		return s.Clone(), One
	}
	out := SOP{NumVars: s.NumVars, Cubes: make([]Cube, len(s.Cubes))}
	for i, c := range s.Cubes {
		out.Cubes[i] = c.Div(cc)
	}
	return out, cc
}

// Equal reports whether two covers contain the same cube set
// (order-insensitive).
func (s SOP) Equal(t SOP) bool {
	if len(s.Cubes) != len(t.Cubes) {
		return false
	}
	a, b := s.Clone(), t.Clone()
	a.Sort()
	b.Sort()
	for i := range a.Cubes {
		if a.Cubes[i] != b.Cubes[i] {
			return false
		}
	}
	return true
}

// String renders the cover as "ab + c'd"; constants render as 0 / 1.
func (s SOP) String() string {
	if s.IsZero() {
		return "0"
	}
	parts := make([]string, len(s.Cubes))
	for i, c := range s.Cubes {
		parts[i] = c.String()
	}
	return strings.Join(parts, " + ")
}
