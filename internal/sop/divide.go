package sop

// Algebraic (weak) division and product, after Brayton & McMullen.
// These treat covers as polynomials over literals: no Boolean
// simplification beyond the algebraic model, which is exactly what the
// MIS optimization flow (and therefore our mini-MIS) relies on.

// MulCube multiplies every cube of s by the cube d.
func (s SOP) MulCube(d Cube) SOP {
	out := SOP{NumVars: s.NumVars, Cubes: make([]Cube, 0, len(s.Cubes))}
	for _, c := range s.Cubes {
		m := c.Mul(d)
		if !m.Contradictory() {
			out.Cubes = append(out.Cubes, m)
		}
	}
	return out
}

// Mul returns the algebraic product s*t: the pairwise cube products,
// contradictions dropped, duplicates merged.
func (s SOP) Mul(t SOP) SOP {
	out := SOP{NumVars: s.NumVars}
	seen := make(map[Cube]bool)
	for _, a := range s.Cubes {
		for _, b := range t.Cubes {
			m := a.Mul(b)
			if m.Contradictory() || seen[m] {
				continue
			}
			seen[m] = true
			out.Cubes = append(out.Cubes, m)
		}
	}
	out.Sort()
	return out
}

// Add returns the union of two covers with duplicates merged.
func (s SOP) Add(t SOP) SOP {
	out := SOP{NumVars: s.NumVars}
	seen := make(map[Cube]bool)
	for _, c := range append(append([]Cube(nil), s.Cubes...), t.Cubes...) {
		if seen[c] {
			continue
		}
		seen[c] = true
		out.Cubes = append(out.Cubes, c)
	}
	out.Sort()
	return out
}

// DivCube divides the cover by a single cube: quotient and remainder
// with s = d*q + r algebraically.
func (s SOP) DivCube(d Cube) (q, r SOP) {
	q = SOP{NumVars: s.NumVars}
	r = SOP{NumVars: s.NumVars}
	for _, c := range s.Cubes {
		if c.HasAllOf(d) {
			q.Cubes = append(q.Cubes, c.Div(d))
		} else {
			r.Cubes = append(r.Cubes, c)
		}
	}
	return q, r
}

// Div performs algebraic (weak) division of s by the divisor t,
// returning quotient q and remainder r such that s = t*q + r and q is
// the largest such cover under the algebraic model. A zero or
// trivial-one divisor yields a zero quotient (and r = s) by convention.
func (s SOP) Div(t SOP) (q, r SOP) {
	if t.IsZero() || t.IsOne() {
		return Zero(s.NumVars), s.Clone()
	}
	// q = intersection over divisor cubes d of { c/d : c in s, d | c }.
	var inter map[Cube]bool
	for _, d := range t.Cubes {
		set := make(map[Cube]bool)
		for _, c := range s.Cubes {
			if c.HasAllOf(d) {
				set[c.Div(d)] = true
			}
		}
		if inter == nil {
			inter = set
		} else {
			for c := range inter {
				if !set[c] {
					delete(inter, c)
				}
			}
		}
		if len(inter) == 0 {
			return Zero(s.NumVars), s.Clone()
		}
	}
	q = SOP{NumVars: s.NumVars}
	for c := range inter {
		q.Cubes = append(q.Cubes, c)
	}
	q.Sort()
	// r = s - t*q (cube set difference; algebraic product has no overlap
	// with distinct remainder cubes by construction).
	prod := t.Mul(q)
	inProd := make(map[Cube]bool, len(prod.Cubes))
	for _, c := range prod.Cubes {
		inProd[c] = true
	}
	r = SOP{NumVars: s.NumVars}
	for _, c := range s.Cubes {
		if !inProd[c] {
			r.Cubes = append(r.Cubes, c)
		}
	}
	r.Sort()
	return q, r
}
