// Package buildinfo answers "what exactly is running" for every binary
// in the module: the module version (or VCS revision) baked in by the
// Go toolchain, the Go version that built it, and the engine list the
// build serves. It backs the -version flag on every command and the
// chortle_build_info / chortled_build_info gauges, so a postmortem
// bundle or a /metrics scrape always identifies the build it came from.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Engines is the mapping-engine list this build serves, in the order
// cmd/chortle documents them.
var Engines = []string{"tree", "mis", "cut"}

// Version returns the best available build identity: the main module's
// version when built from a tagged module, otherwise the VCS revision
// (suffixed "+dirty" for a modified tree), otherwise "dev".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// GoVersion returns the toolchain that built (or is running) the
// binary.
func GoVersion() string { return runtime.Version() }

// String renders the one-line identity used by every -version flag:
// "<tool> <version> <goversion> engines=tree,mis,cut".
func String(tool string) string {
	return fmt.Sprintf("%s %s %s engines=%s", tool, Version(), GoVersion(), engineList())
}

// Print writes the -version line to w.
func Print(w io.Writer, tool string) { fmt.Fprintln(w, String(tool)) }

func engineList() string {
	out := ""
	for i, e := range Engines {
		if i > 0 {
			out += ","
		}
		out += e
	}
	return out
}

// EngineList returns the comma-joined engine list ("tree,mis,cut") —
// the value of the build-info gauge's engines label.
func EngineList() string { return engineList() }
