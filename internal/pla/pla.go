// Package pla reads and writes the Berkeley/espresso PLA format — the
// native form of the two-level MCNC benchmarks the paper's suite draws
// on (9sym, alu2, alu4 and most of the logic synthesis set were
// distributed as .pla files and pushed through espresso and the MIS
// standard script). Supported directives: .i, .o, .p, .ilb, .ob, .type
// fr/f, .e/.end; input plane characters 0/1/-, output plane 0/1/~/-.
//
// A parsed PLA converts to the optimizer's SOP-node network (one node
// per output) via ToNet, joining the same flow the built-in PLA-derived
// benchmarks use.
package pla

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"chortle/internal/cerrs"
	"chortle/internal/opt"
	"chortle/internal/sop"
)

// maxOutputs bounds .o: real PLAs have at most a few hundred outputs,
// and an unbounded count is a memory-exhaustion vector (the parser
// materializes one cover and one label per output) whose synthesized
// .ob line could not round-trip through the line scanner anyway.
const maxOutputs = 1 << 16

// PLA is a two-level cover with named inputs and outputs.
type PLA struct {
	Name    string
	Inputs  []string
	Outputs []string
	// Cover holds one SOP per output, over the inputs (variable i =
	// Inputs[i]).
	Cover []sop.SOP
}

// Read parses a PLA description.
func Read(r io.Reader) (*PLA, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	p := &PLA{Name: "pla"}
	var (
		ni, no   = -1, -1
		declared = -1
		rows     int
		typ      = "fr"
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case ".i":
			if len(fields) != 2 {
				return nil, fmt.Errorf("pla line %d: .i needs a count", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 || v > sop.MaxVars {
				return nil, fmt.Errorf("pla line %d: bad input count %q", lineNo, fields[1])
			}
			ni = v
		case ".o":
			if len(fields) != 2 {
				return nil, fmt.Errorf("pla line %d: .o needs a count", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 || v > maxOutputs {
				return nil, fmt.Errorf("pla line %d: bad output count %q", lineNo, fields[1])
			}
			no = v
		case ".p":
			if len(fields) != 2 {
				return nil, fmt.Errorf("pla line %d: .p needs a count", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("pla line %d: bad product count", lineNo)
			}
			declared = v
		case ".ilb":
			p.Inputs = append([]string(nil), fields[1:]...)
		case ".ob":
			p.Outputs = append([]string(nil), fields[1:]...)
		case ".type":
			if len(fields) != 2 {
				return nil, fmt.Errorf("pla line %d: .type needs a value", lineNo)
			}
			typ = fields[1]
			if typ != "fr" && typ != "f" {
				return nil, fmt.Errorf("pla line %d: unsupported .type %q (only f and fr)", lineNo, typ)
			}
		case ".e", ".end":
			// terminator
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, fmt.Errorf("pla line %d: unsupported directive %s", lineNo, fields[0])
			}
			// A product term row: input plane then output plane,
			// possibly separated by spaces.
			joined := strings.Join(fields, "")
			if ni < 0 || no < 0 {
				return nil, fmt.Errorf("pla line %d: cube before .i/.o", lineNo)
			}
			if len(joined) != ni+no {
				return nil, fmt.Errorf("pla line %d: %w: cube width %d, want %d+%d", lineNo, cerrs.ErrArityMismatch, len(joined), ni, no)
			}
			var c sop.Cube
			for i := 0; i < ni; i++ {
				switch joined[i] {
				case '1':
					c.Pos |= 1 << uint(i)
				case '0':
					c.Neg |= 1 << uint(i)
				case '-', '2':
					// don't care
				default:
					return nil, fmt.Errorf("pla line %d: bad input-plane char %q", lineNo, joined[i])
				}
			}
			if p.Cover == nil {
				p.Cover = make([]sop.SOP, no)
				for o := range p.Cover {
					p.Cover[o] = sop.Zero(ni)
				}
			}
			for o := 0; o < no; o++ {
				switch joined[ni+o] {
				case '1', '4':
					p.Cover[o].Cubes = append(p.Cover[o].Cubes, c)
				case '0', '~', '-', '2', '3':
					// off-set / don't-care / not-used: ignored for the
					// on-set cover of type f/fr.
				default:
					return nil, fmt.Errorf("pla line %d: bad output-plane char %q", lineNo, joined[ni+o])
				}
			}
			rows++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if ni < 0 || no < 0 {
		return nil, fmt.Errorf("pla: missing .i or .o")
	}
	if declared >= 0 && rows != declared {
		return nil, fmt.Errorf("pla: .p declares %d products, found %d", declared, rows)
	}
	if p.Cover == nil {
		p.Cover = make([]sop.SOP, no)
		for o := range p.Cover {
			p.Cover[o] = sop.Zero(ni)
		}
	}
	if len(p.Inputs) == 0 {
		for i := 0; i < ni; i++ {
			p.Inputs = append(p.Inputs, fmt.Sprintf("i%d", i))
		}
	}
	if len(p.Outputs) == 0 {
		for o := 0; o < no; o++ {
			p.Outputs = append(p.Outputs, fmt.Sprintf("o%d", o))
		}
	}
	if len(p.Inputs) != ni || len(p.Outputs) != no {
		return nil, fmt.Errorf("pla: %w: label counts (.ilb %d, .ob %d) disagree with .i %d/.o %d",
			cerrs.ErrArityMismatch, len(p.Inputs), len(p.Outputs), ni, no)
	}
	// Input and output labels share one signal namespace downstream
	// (ToNet builds them into a single network); collisions would panic
	// deep inside the optimizer, so reject them here.
	seen := make(map[string]bool, ni+no)
	for _, l := range p.Inputs {
		if seen[l] {
			return nil, fmt.Errorf("pla: %w: input label %q", cerrs.ErrDuplicateName, l)
		}
		seen[l] = true
	}
	for _, l := range p.Outputs {
		if seen[l] {
			return nil, fmt.Errorf("pla: %w: output label %q", cerrs.ErrDuplicateName, l)
		}
		seen[l] = true
	}
	for o := range p.Cover {
		p.Cover[o].MinimizeSCC()
	}
	return p, nil
}

// ReadString parses a PLA from a string.
func ReadString(s string) (*PLA, error) { return Read(strings.NewReader(s)) }

// Write emits the PLA in espresso format (type f, on-set only).
func Write(w io.Writer, p *PLA) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".i %d\n.o %d\n", len(p.Inputs), len(p.Outputs))
	fmt.Fprintf(bw, ".ilb %s\n", strings.Join(p.Inputs, " "))
	fmt.Fprintf(bw, ".ob %s\n", strings.Join(p.Outputs, " "))

	// Merge identical cubes across outputs into shared rows.
	type row struct {
		c    sop.Cube
		outs []bool
	}
	index := map[sop.Cube]*row{}
	var rowsOrdered []*row
	for o, cover := range p.Cover {
		for _, c := range cover.Cubes {
			r := index[c]
			if r == nil {
				r = &row{c: c, outs: make([]bool, len(p.Outputs))}
				index[c] = r
				rowsOrdered = append(rowsOrdered, r)
			}
			r.outs[o] = true
		}
	}
	fmt.Fprintf(bw, ".p %d\n", len(rowsOrdered))
	for _, r := range rowsOrdered {
		for i := range p.Inputs {
			bit := uint64(1) << uint(i)
			switch {
			case r.c.Pos&bit != 0:
				bw.WriteByte('1')
			case r.c.Neg&bit != 0:
				bw.WriteByte('0')
			default:
				bw.WriteByte('-')
			}
		}
		bw.WriteByte(' ')
		for _, on := range r.outs {
			if on {
				bw.WriteByte('1')
			} else {
				bw.WriteByte('0')
			}
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}

// ToNet converts the PLA to the optimizer's SOP-node representation:
// one node per output over the shared input list, ready for the
// standard script and lowering.
func (p *PLA) ToNet(name string) (*opt.Net, error) {
	if name == "" {
		name = p.Name
	}
	nt := opt.NewNet(name)
	taken := make(map[string]bool, len(p.Inputs)+len(p.Outputs))
	for _, in := range p.Inputs {
		nt.AddInput(in)
		taken[in] = true
	}
	for o, out := range p.Outputs {
		cover := p.Cover[o]
		if cover.IsZero() || cover.IsOne() {
			return nil, fmt.Errorf("pla: output %q is constant; constants have no gate realization", out)
		}
		// The node name must not collide with any input or earlier node
		// (an input literally named "x$n" next to an output "x" would
		// otherwise panic inside the optimizer's namespace check).
		node := out + "$n"
		for taken[node] {
			node += "$"
		}
		taken[node] = true
		nt.AddNode(node, p.Inputs, cover)
		nt.MarkOutput(out, node, false)
	}
	if err := nt.Validate(); err != nil {
		return nil, err
	}
	return nt, nil
}

// FromCovers builds a PLA value from per-output covers over shared
// named inputs (a convenience for benchmark generators and tests).
func FromCovers(name string, inputs, outputs []string, covers []sop.SOP) (*PLA, error) {
	if len(outputs) != len(covers) {
		return nil, fmt.Errorf("pla: %d outputs but %d covers", len(outputs), len(covers))
	}
	for i, c := range covers {
		if c.NumVars != len(inputs) {
			return nil, fmt.Errorf("pla: cover %d arity %d, want %d", i, c.NumVars, len(inputs))
		}
	}
	return &PLA{
		Name:    name,
		Inputs:  append([]string(nil), inputs...),
		Outputs: append([]string(nil), outputs...),
		Cover:   append([]sop.SOP(nil), covers...),
	}, nil
}
