package pla

import (
	"math/rand"
	"strings"
	"testing"

	"chortle/internal/sop"
)

const sample = `
# a 2-output sample
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
11- 10
--1 11
0-0 01
.e
`

func TestReadSample(t *testing.T) {
	p, err := ReadString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Inputs) != 3 || len(p.Outputs) != 2 {
		t.Fatalf("IO = %d/%d", len(p.Inputs), len(p.Outputs))
	}
	if p.Inputs[0] != "a" || p.Outputs[1] != "g" {
		t.Fatalf("labels wrong: %v %v", p.Inputs, p.Outputs)
	}
	// f = ab + c ; g = c + a'c'.
	for m := uint64(0); m < 8; m++ {
		a, b, c := m&1 == 1, m>>1&1 == 1, m>>2&1 == 1
		wantF := (a && b) || c
		wantG := c || (!a && !c)
		if p.Cover[0].Eval(m) != wantF {
			t.Fatalf("f wrong at %03b", m)
		}
		if p.Cover[1].Eval(m) != wantG {
			t.Fatalf("g wrong at %03b", m)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	p, err := ReadString(sample)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadString(sb.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	for o := range p.Cover {
		for m := uint64(0); m < 8; m++ {
			if p.Cover[o].Eval(m) != q.Cover[o].Eval(m) {
				t.Fatalf("output %d differs at %b after round trip:\n%s", o, m, sb.String())
			}
		}
	}
}

func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		ni := 1 + rng.Intn(6)
		no := 1 + rng.Intn(4)
		covers := make([]sop.SOP, no)
		inputs := make([]string, ni)
		outputs := make([]string, no)
		for i := range inputs {
			inputs[i] = "x" + string(rune('a'+i))
		}
		for o := range outputs {
			outputs[o] = "y" + string(rune('a'+o))
			covers[o] = sop.Zero(ni)
			for c := 0; c < 1+rng.Intn(5); c++ {
				var cube sop.Cube
				for v := 0; v < ni; v++ {
					switch rng.Intn(3) {
					case 0:
						cube.Pos |= 1 << uint(v)
					case 1:
						cube.Neg |= 1 << uint(v)
					}
				}
				covers[o].Cubes = append(covers[o].Cubes, cube)
			}
			covers[o].MinimizeSCC()
		}
		p, err := FromCovers("t", inputs, outputs, covers)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := Write(&sb, p); err != nil {
			t.Fatal(err)
		}
		q, err := ReadString(sb.String())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for o := range covers {
			for m := uint64(0); m < 1<<uint(ni); m++ {
				if covers[o].Eval(m) != q.Cover[o].Eval(m) {
					t.Fatalf("trial %d output %d wrong at %b", trial, o, m)
				}
			}
		}
	}
}

func TestToNetAndMap(t *testing.T) {
	p, err := ReadString(sample)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := p.ToNet("")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := nt.Lower()
	if err != nil {
		t.Fatal(err)
	}
	got, err := nw.Simulate(map[string]uint64{"a": 0b10101010, "b": 0b11001100, "c": 0b11110000})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint(0); i < 8; i++ {
		a, b, c := i&1 == 1, i>>1&1 == 1, i>>2&1 == 1
		if got["f"]>>i&1 == 1 != ((a && b) || c) {
			t.Fatalf("lowered f wrong at %03b", i)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"noio":       "11- 10\n",
		"badwidth":   ".i 3\n.o 1\n11 1\n",
		"badchar":    ".i 2\n.o 1\nx1 1\n",
		"badout":     ".i 2\n.o 1\n11 z\n",
		"pmismatch":  ".i 2\n.o 1\n.p 5\n11 1\n.e\n",
		"badtype":    ".i 2\n.o 1\n.type fd\n11 1\n.e\n",
		"directive":  ".i 2\n.o 1\n.phase 01\n11 1\n.e\n",
		"labelcount": ".i 2\n.o 1\n.ilb a\n11 1\n.e\n",
		"badi":       ".i 99\n.o 1\n",
	}
	for name, src := range cases {
		if _, err := ReadString(src); err == nil {
			t.Errorf("case %q: error expected", name)
		}
	}
}

func TestConstantOutputRejectedByToNet(t *testing.T) {
	p, err := ReadString(".i 2\n.o 1\n.e\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ToNet(""); err == nil {
		t.Fatal("constant (empty) output accepted by ToNet")
	}
}
