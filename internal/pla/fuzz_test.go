package pla

import "testing"

// FuzzRead: mangled PLA inputs must never panic anywhere on the intake
// path — not in the parser, and not downstream in ToNet/Lower, which
// the public ReadPLA drives on every accepted parse. Accepted PLAs must
// also round-trip through Write.
func FuzzRead(f *testing.F) {
	seeds := []string{
		sample,
		"",
		".i 2\n.o 1\n11 1\n",
		".i 2\n.o 1\n.p 1\n-- 1\n.e\n",
		".i 0\n.o 0\n",
		".i 2\n.o 2\n.ilb a b\n.ob x y\n1- 10\n-0 01\n.type f\n.e",
		".i 2\n.o 1\n1 1 1\n",
		// MCNC-style corpus: the shapes the real two-level benchmarks
		// use — comments, .p counts, .type fr, shared-cube rows,
		// output-plane don't-cares, espresso's ~ marker.
		"# rd53-style\n.i 5\n.o 3\n.p 3\n.ilb a b c d e\n.ob s0 s1 s2\n11--- 100\n--111 010\n10101 001\n.e\n",
		".i 4\n.o 2\n.type fr\n.p 4\n1--0 10\n-11- 01\n0--1 11\n1001 00\n.end\n",
		".i 3\n.o 2\n110 1~\n-01 ~1\n111 --\n.e\n",
		".i 9\n.o 1\n.p 2\n111111111 1\n000000000 1\n.e\n",
		// Namespace traps: output names colliding with inputs or with
		// the generated node names.
		".i 2\n.o 1\n.ilb a b\n.ob a$n\n11 1\n.e\n",
		".i 2\n.o 2\n.ilb x y$n\n.ob y q\n11 10\n00 01\n.e\n",
		// Constant outputs (no gate realization) and wide don't-cares.
		".i 2\n.o 1\n-- 1\n.e\n",
		".i 2\n.o 1\n.p 0\n.e\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadString(src)
		if err != nil {
			return
		}
		var sb writerSink
		if err := Write(&sb, p); err != nil {
			t.Fatalf("accepted PLA fails to write: %v", err)
		}
		if _, err := ReadString(sb.String()); err != nil {
			t.Fatalf("written PLA fails to re-read: %v\n%s", err, sb.String())
		}
		// Drive the full intake path: factored network, lowering,
		// structural validation. Errors are fine (constant outputs are
		// rejected, for instance); panics are the bug being hunted.
		nt, err := p.ToNet("")
		if err != nil {
			return
		}
		nw, err := nt.Lower()
		if err != nil {
			return
		}
		if err := nw.Validate(); err != nil {
			t.Fatalf("lowered network invalid: %v", err)
		}
	})
}

type writerSink struct{ b []byte }

func (w *writerSink) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *writerSink) String() string              { return string(w.b) }
