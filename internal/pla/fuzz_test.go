package pla

import "testing"

// FuzzRead: mangled PLA inputs must never panic; accepted PLAs must
// round-trip through Write.
func FuzzRead(f *testing.F) {
	seeds := []string{
		sample,
		"",
		".i 2\n.o 1\n11 1\n",
		".i 2\n.o 1\n.p 1\n-- 1\n.e\n",
		".i 0\n.o 0\n",
		".i 2\n.o 2\n.ilb a b\n.ob x y\n1- 10\n-0 01\n.type f\n.e",
		".i 2\n.o 1\n1 1 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadString(src)
		if err != nil {
			return
		}
		var sb writerSink
		if err := Write(&sb, p); err != nil {
			t.Fatalf("accepted PLA fails to write: %v", err)
		}
		if _, err := ReadString(sb.String()); err != nil {
			t.Fatalf("written PLA fails to re-read: %v\n%s", err, sb.String())
		}
	})
}

type writerSink struct{ b []byte }

func (w *writerSink) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *writerSink) String() string              { return string(w.b) }
