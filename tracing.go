package chortle

import (
	"io"

	"chortle/internal/obs"
)

// Request-scoped distributed tracing. A TraceID generated at the edge
// (the client package, or chortled at admission) follows one mapping
// request across processes via the W3C traceparent header; each
// process records Spans into its own sink, and cmd/traceview joins the
// streams into a single multi-process Perfetto timeline. The nil
// *ReqTrace is the disabled state and costs only nil checks — the same
// zero-alloc contract as the nil Observer.

// TraceID is a 16-byte trace identifier (32 hex digits in text form).
type TraceID = obs.TraceID

// SpanID is an 8-byte span identifier (16 hex digits in text form).
type SpanID = obs.SpanID

// NewTraceID returns a random trace identifier.
func NewTraceID() TraceID { return obs.NewTraceID() }

// NewSpanID returns a random span identifier.
func NewSpanID() SpanID { return obs.NewSpanID() }

// TraceparentHeader is the HTTP header carrying trace context, in the
// W3C Trace Context format ("00-<trace>-<parent>-01").
const TraceparentHeader = obs.TraceparentHeader

// FormatTraceparent renders trace context as a traceparent value.
func FormatTraceparent(t TraceID, parent SpanID) string {
	return obs.FormatTraceparent(t, parent)
}

// ParseTraceparent parses a traceparent header; ok is false for
// malformed or all-zero IDs (start a fresh trace then).
func ParseTraceparent(h string) (t TraceID, parent SpanID, ok bool) {
	return obs.ParseTraceparent(h)
}

// Span is one timed, named operation inside a trace, with a parent
// link and the process that performed it.
type Span = obs.Span

// SpanRecorder receives finished spans (concurrency-safe).
type SpanRecorder = obs.SpanRecorder

// SpanJSONL streams spans as one JSON object per line — the client's
// -server-trace format, mergeable with chortled access logs by
// cmd/traceview.
type SpanJSONL = obs.SpanJSONL

// NewSpanJSONL returns a span recorder streaming to w.
func NewSpanJSONL(w io.Writer) *SpanJSONL { return obs.NewSpanJSONL(w) }

// SpanCollector retains spans in memory (tests, in-process timelines).
type SpanCollector = obs.SpanCollector

// ReqTrace is a request-scoped trace recorder: a span tree plus a
// bounded event collector joining the mapper's event stream to one
// request. Nil is the disabled state; every method on a nil *ReqTrace
// is inert and allocation-free.
type ReqTrace = obs.ReqTrace

// NewReqTrace opens a request trace. Zero trace starts a fresh one;
// zero parent makes this process the trace root. maxSpans and
// maxEvents bound the recorder.
func NewReqTrace(process, rootName string, trace TraceID, parent SpanID, maxSpans, maxEvents int) *ReqTrace {
	return obs.NewReqTrace(process, rootName, trace, parent, maxSpans, maxEvents)
}

// AccessRecord is one structured chortled access-log line: trace ID,
// outcome class, timing breakdown, cache statistics, and the span
// timeline.
type AccessRecord = obs.AccessRecord

// OutcomeClass maps an HTTP status code to the access log's outcome
// label ("2xx", "429", "503", "504", "500", "4xx", "abandoned").
func OutcomeClass(code int) string { return obs.OutcomeClass(code) }

// ReadTraceJSONL parses a mixed JSONL stream — events, spans, and
// access records (whose embedded spans are flattened) — for
// cmd/traceview's multi-process merge.
func ReadTraceJSONL(r io.Reader) ([]Event, []Span, error) { return obs.ReadTraceJSONL(r) }

// WriteChromeTraceMulti converts a multi-process span set plus any
// loose mapper events into one Chrome trace_event JSON array: one
// Perfetto process per recording process, one thread track per trace.
func WriteChromeTraceMulti(w io.Writer, spans []Span, events []Event) error {
	return obs.WriteChromeTraceMulti(w, spans, events)
}
