package chortle

import (
	"bytes"
	"fmt"
	"testing"

	"chortle/internal/bench"
	"chortle/internal/lut"
)

// Provenance invariants, verified over the full golden benchmark set:
// with Options.Provenance on, every emitted LUT carries a record, and
// the Covers sets exactly partition the prepared network's gate nodes.
// A second test pins the passivity guarantee: the emitted circuit is
// byte-identical with provenance on or off.

// preparedGates returns the non-PI node names of the network the mapper
// actually covered (Result.Prepared).
func preparedGates(t *testing.T, res *Result) map[string]bool {
	t.Helper()
	if res.Prepared == nil {
		t.Fatal("Result.Prepared not recorded with Options.Provenance set")
	}
	gates := make(map[string]bool)
	for _, n := range res.Prepared.Nodes {
		if !n.IsInput() {
			gates[n.Name] = true
		}
	}
	return gates
}

func checkProvenance(t *testing.T, label string, res *Result) {
	t.Helper()
	if err := res.Circuit.CheckProvenance(preparedGates(t, res)); err != nil {
		t.Errorf("%s: %v", label, err)
	}
}

func TestProvenanceInvariants(t *testing.T) {
	for _, c := range goldenCircuits() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			nw, err := bench.Optimized(c)
			if err != nil {
				t.Fatalf("preparing %s: %v", c.Name, err)
			}
			for k := 2; k <= 5; k++ {
				opts := DefaultOptions(k)
				opts.Provenance = true
				res, err := Map(nw, opts)
				if err != nil {
					t.Fatalf("K=%d map: %v", k, err)
				}
				checkProvenance(t, fmt.Sprintf("K=%d", k), res)
			}
		})
	}
}

// TestProvenanceModes covers the emission paths the default grid does
// not reach: the sequential/memoized combinations, repacking (which
// folds records), the bin-packing strategy, the depth objective, budget
// degradation, and duplication.
func TestProvenanceModes(t *testing.T) {
	c, err := bench.ByName("rd73")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := bench.Optimized(c)
	if err != nil {
		t.Fatal(err)
	}
	base := func() Options {
		o := DefaultOptions(4)
		o.Provenance = true
		return o
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"sequential", func() Options { o := base(); o.Parallel = false; o.Memoize = false; return o }()},
		{"memo-only", func() Options { o := base(); o.Parallel = false; return o }()},
		{"parallel-only", func() Options { o := base(); o.Memoize = false; return o }()},
		{"repack", func() Options { o := base(); o.RepackLUTs = true; return o }()},
		{"binpack", func() Options { o := base(); o.Strategy = StrategyBinPack; return o }()},
		{"depth", func() Options { o := base(); o.OptimizeDepth = true; return o }()},
		{"degraded", func() Options { o := base(); o.Budget = Budget{WorkUnits: 1}; return o }()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := Map(nw, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			checkProvenance(t, tc.name, res)
			if tc.name == "degraded" && len(res.Degraded) == 0 {
				t.Fatal("WorkUnits=1 budget degraded no trees; case is vacuous")
			}
		})
	}
	t.Run("duplicate", func(t *testing.T) {
		res, _, err := MapDuplicateCostAware(nw, base())
		if err != nil {
			t.Fatal(err)
		}
		checkProvenance(t, "duplicate", res)
	})
}

// TestProvenancePassive pins the core guarantee: turning provenance on
// changes nothing about the emitted circuit, in any mode combination.
func TestProvenancePassive(t *testing.T) {
	c, err := bench.ByName("9symml")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := bench.Optimized(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []bool{false, true} {
		for _, memoize := range []bool{false, true} {
			opts := DefaultOptions(4)
			opts.Parallel, opts.Memoize = parallel, memoize
			plain, err := Map(nw, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Provenance = true
			prov, err := Map(nw, opts)
			if err != nil {
				t.Fatal(err)
			}
			var a, b bytes.Buffer
			if err := plain.Circuit.WriteBLIF(&a); err != nil {
				t.Fatal(err)
			}
			if err := prov.Circuit.WriteBLIF(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("parallel=%v memoize=%v: circuit differs with provenance on", parallel, memoize)
			}
		}
	}
}

// TestProvenanceOriginsMemo checks that the memoized run actually
// exercises the reuse origins (otherwise the origin taxonomy is dead
// code) and that DOT-relevant fields (tree, covers, shape) are
// mode-independent even when origins differ.
func TestProvenanceOriginsMemo(t *testing.T) {
	c, err := bench.ByName("des")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := bench.Optimized(c)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(4)
	opts.Provenance = true
	memo, err := Map(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	counts := memo.Circuit.OriginCounts()
	if counts[lut.OriginMemo.String()]+counts[lut.OriginReplay.String()] == 0 {
		t.Errorf("memoized des mapping recorded no memo/replay origins: %v", counts)
	}

	opts.Memoize = false
	plain, err := Map(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range plain.Circuit.LUTs {
		p, q := plain.Circuit.ProvenanceOf(l.Name), memo.Circuit.ProvenanceOf(l.Name)
		if q == nil {
			t.Fatalf("lut %q missing from memoized provenance", l.Name)
		}
		if p.Tree != q.Tree || p.Shape != q.Shape || fmt.Sprint(p.Covers) != fmt.Sprint(q.Covers) {
			t.Fatalf("lut %q: structural provenance differs across memoize:\n  plain %+v\n  memo  %+v", l.Name, p, q)
		}
		if !p.Origin.Searched() || !q.Origin.Searched() {
			t.Fatalf("lut %q: exhaustive mapping recorded non-searched origin", l.Name)
		}
	}
}
