package chortle

import (
	"io"
	"time"

	"chortle/internal/metrics"
	"chortle/internal/obs"
)

// Post-hoc observability: the black-box flight recorder and the SLO
// burn-rate watchdog. The recorder retains the recent past (requests,
// overload decisions, lifecycle notes) in a bounded ring so chortled
// can write a self-contained postmortem bundle when an incident fires;
// the watchdog evaluates declared objectives as multi-window burn rates
// and escalates before users notice. Both follow the package's
// passivity contract: the nil value is the disabled state, every method
// on it is a nil check, and the capture path adds zero allocations to
// the request hot path when disabled.

// FlightRecorder is a bounded in-memory ring of recent requests,
// overload-control decisions, and lifecycle notes — chortled's black
// box. A nil *FlightRecorder discards everything at zero cost.
type FlightRecorder = obs.FlightRecorder

// NewFlightRecorder returns a recorder retaining at most capacity
// entries (<= 0 means 4096) no older than retention (<= 0 means
// age-unbounded).
func NewFlightRecorder(capacity int, retention time.Duration) *FlightRecorder {
	return obs.NewFlightRecorder(capacity, retention)
}

// FlightEntry is one recorded ring slot.
type FlightEntry = obs.FlightEntry

// OverloadDecision records why the server refused or failed one request
// (queue-full, codel, deadline-expired, mem-valve, draining, panic)
// with the admission state that drove the decision.
type OverloadDecision = obs.OverloadDecision

// Canonical overload-decision reasons shared by the access log, the
// flight ring, and the postmortem report.
const (
	ReasonQueueFull       = obs.ReasonQueueFull
	ReasonCoDel           = obs.ReasonCoDel
	ReasonDeadlineExpired = obs.ReasonDeadlineExpired
	ReasonMemValve        = obs.ReasonMemValve
	ReasonDraining        = obs.ReasonDraining
	ReasonPanic           = obs.ReasonPanic
)

// Flight entry kinds.
const (
	FlightAccess   = obs.FlightAccess
	FlightDecision = obs.FlightDecision
	FlightNote     = obs.FlightNote
)

// ReadFlightJSONL parses a postmortem bundle's ring.jsonl back into
// entries (cmd/postmortem's reader).
func ReadFlightJSONL(r io.Reader) ([]FlightEntry, error) { return obs.ReadFlightJSONL(r) }

// SLO is one declared service-level objective (availability percentage
// or a solve-latency percentile bound).
type SLO = metrics.SLO

// SLOKind discriminates objective kinds.
type SLOKind = metrics.SLOKind

// Objective kinds.
const (
	SLOAvailability = metrics.SLOAvailability
	SLOLatency      = metrics.SLOLatency
)

// ParseSLOs parses the -slo flag syntax
// ("availability=99.9,p95_solve_ms=250").
func ParseSLOs(spec string) ([]SLO, error) { return metrics.ParseSLOs(spec) }

// SLOWatchdog evaluates declared objectives as multi-window burn rates,
// exposes <prefix>_slo_* gauges, and reports status transitions. A nil
// *SLOWatchdog is the disabled state.
type SLOWatchdog = metrics.SLOWatchdog

// SLOConfig tunes a watchdog (windows, thresholds, transition hooks).
type SLOConfig = metrics.SLOConfig

// SLOStatus is the watchdog's overall verdict: SLOOK, SLOWarn, or
// SLOCritical.
type SLOStatus = metrics.SLOStatus

// Watchdog statuses.
const (
	SLOOK       = metrics.SLOOK
	SLOWarn     = metrics.SLOWarn
	SLOCritical = metrics.SLOCritical
)

// SLOReport is one objective's state at the last evaluation (the
// /debug/slo JSON body).
type SLOReport = metrics.SLOReport

// SLOWindowReport is one window's burn rate inside an SLOReport.
type SLOWindowReport = metrics.SLOWindowReport

// NewSLOWatchdog builds a watchdog for the objectives and registers its
// gauges on reg. Drive it with Run (production) or Tick (tests).
func NewSLOWatchdog(slos []SLO, reg *MetricsRegistry, cfg SLOConfig) *SLOWatchdog {
	return metrics.NewSLOWatchdog(slos, reg, cfg)
}
