package chortle

import (
	"strings"
	"sync"
	"testing"

	"chortle/internal/bench"
	"chortle/internal/network"
)

// The performance machinery — the parallel DP pipeline and the
// isomorphic-tree memoization — must be invisible in the output: for
// every circuit and every K, the emitted BLIF is byte-identical no
// matter which combination of switches is on. This is the property that
// lets DefaultOptions enable both unconditionally.

var (
	detOnce sync.Once
	detNets map[string]*network.Network
)

func determinismSuite(t *testing.T) map[string]*network.Network {
	t.Helper()
	detOnce.Do(func() {
		detNets = make(map[string]*network.Network)
		for _, c := range bench.Suite() {
			nw, err := bench.Optimized(c)
			if err != nil {
				t.Fatalf("preparing %s: %v", c.Name, err)
			}
			detNets[c.Name] = nw
		}
	})
	return detNets
}

func mapToBLIF(t *testing.T, nw *Network, opts Options) string {
	t.Helper()
	res, err := Map(nw, opts)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	var sb strings.Builder
	if err := res.Circuit.WriteBLIF(&sb); err != nil {
		t.Fatalf("WriteBLIF: %v", err)
	}
	return sb.String()
}

// TestBudgetedMappingDeterministic pins the determinism guarantee of
// Options.Budget: a work budget generous enough never to be exhausted
// must leave the emitted BLIF byte-identical to an unbudgeted run —
// the metering counters may not influence any search decision — in all
// four Parallel x Memoize modes.
func TestBudgetedMappingDeterministic(t *testing.T) {
	nets := determinismSuite(t)
	for _, c := range bench.Suite() {
		nw := nets[c.Name]
		for _, par := range []bool{false, true} {
			for _, memo := range []bool{false, true} {
				opts := DefaultOptions(4)
				opts.Parallel, opts.Memoize = par, memo
				ref := mapToBLIF(t, nw, opts)
				opts.Budget.WorkUnits = 1 << 40
				got := mapToBLIF(t, nw, opts)
				if got != ref {
					t.Errorf("%s parallel=%v memoize=%v: budgeted BLIF differs from unbudgeted",
						c.Name, par, memo)
				}
			}
		}
	}
}

// TestObservedMappingDeterministic pins the observability layer's
// read-only guarantee: with Options.Observer attached (and pprof labels
// on), the emitted BLIF is byte-identical to the unobserved run in
// every Parallel x Memoize x Budget combination.
func TestObservedMappingDeterministic(t *testing.T) {
	nets := determinismSuite(t)
	for _, c := range bench.Suite() {
		nw := nets[c.Name]
		for _, par := range []bool{false, true} {
			for _, memo := range []bool{false, true} {
				for _, budget := range []int64{0, 1 << 40} {
					opts := DefaultOptions(4)
					opts.Parallel, opts.Memoize = par, memo
					opts.Budget.WorkUnits = budget
					ref := mapToBLIF(t, nw, opts)
					var col Collector
					opts.Observer = &col
					opts.PprofLabels = true
					got := mapToBLIF(t, nw, opts)
					if got != ref {
						t.Errorf("%s parallel=%v memoize=%v budget=%d: observed BLIF differs from unobserved",
							c.Name, par, memo, budget)
					}
					if col.Len() == 0 {
						t.Errorf("%s parallel=%v memoize=%v budget=%d: observer saw no events",
							c.Name, par, memo, budget)
					}
				}
			}
		}
	}
}

func TestMappingDeterministicAcrossModes(t *testing.T) {
	nets := determinismSuite(t)
	modes := []struct {
		name              string
		parallel, memoize bool
	}{
		{"sequential", false, false},
		{"memoized", false, true},
		{"parallel", true, false},
		{"parallel+memoized", true, true},
	}
	for _, c := range bench.Suite() {
		nw := nets[c.Name]
		for k := 2; k <= 5; k++ {
			opts := DefaultOptions(k)
			opts.Parallel, opts.Memoize = false, false
			ref := mapToBLIF(t, nw, opts)
			for _, mode := range modes[1:] {
				opts.Parallel, opts.Memoize = mode.parallel, mode.memoize
				got := mapToBLIF(t, nw, opts)
				if got != ref {
					t.Errorf("%s K=%d: %s BLIF differs from sequential", c.Name, k, mode.name)
				}
			}
		}
	}
}

// TestCutEngineDeterministic extends the determinism guarantee to the
// priority-cut engine: Parallel and Memoize are tree-engine switches
// the cut engine ignores, but flipping them — or simply running again,
// with or without an observer — must leave the emitted BLIF
// byte-identical.
func TestCutEngineDeterministic(t *testing.T) {
	nets := determinismSuite(t)
	for _, c := range bench.Suite() {
		nw := nets[c.Name]
		for k := 3; k <= 5; k += 2 {
			base := DefaultOptions(k)
			base.Engine = EngineCut
			ref := mapToBLIF(t, nw, base)
			for _, par := range []bool{false, true} {
				for _, memo := range []bool{false, true} {
					opts := base
					opts.Parallel, opts.Memoize = par, memo
					if got := mapToBLIF(t, nw, opts); got != ref {
						t.Errorf("%s K=%d parallel=%v memoize=%v: cut BLIF differs",
							c.Name, k, par, memo)
					}
				}
			}
			// Repeated runs and observed runs are byte-identical too.
			if got := mapToBLIF(t, nw, base); got != ref {
				t.Errorf("%s K=%d: repeated cut run differs", c.Name, k)
			}
			var col Collector
			obs := base
			obs.Observer = &col
			if got := mapToBLIF(t, nw, obs); got != ref {
				t.Errorf("%s K=%d: observed cut run differs", c.Name, k)
			}
			if col.Len() == 0 {
				t.Errorf("%s K=%d: observer saw no cut events", c.Name, k)
			}
		}
	}
}
