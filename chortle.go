// Package chortle is a from-scratch reproduction of the Chortle
// technology mapper for lookup table-based FPGAs (Francis, Rose, Chung,
// DAC 1990). It maps optimized multi-level Boolean networks into
// circuits of K-input lookup tables, minimizing LUT count, and ships
// with everything the paper's evaluation needs: a BLIF front end, a
// mini-MIS logic optimizer, a MIS II-style library mapper as the
// baseline, the MCNC-89-profile benchmark suite, and a harness that
// regenerates the paper's Tables 1-4.
//
// Quick start:
//
//	nw, _ := chortle.ReadBLIF(file)
//	res, _ := chortle.Map(nw, chortle.DefaultOptions(4))
//	fmt.Println(res.LUTs)
//	res.Circuit.WriteBLIF(os.Stdout)
package chortle

import (
	"context"
	"io"

	"chortle/internal/blif"
	"chortle/internal/core"
	"chortle/internal/lut"
	"chortle/internal/mislib"
	"chortle/internal/mismap"
	"chortle/internal/network"
	"chortle/internal/obs"
	"chortle/internal/opt"
	"chortle/internal/pla"
	"chortle/internal/shapecache"
	"chortle/internal/verify"
)

// Network is a technology-independent Boolean network: a DAG of AND/OR
// nodes with polarized edges, the mapper's input representation.
type Network = network.Network

// Circuit is a mapped netlist of K-input lookup tables, each carrying
// its programmed truth table.
type Circuit = lut.Circuit

// Options configures the Chortle mapper (see DefaultOptions).
type Options = core.Options

// Budget bounds the exhaustive decomposition search (Options.Budget):
// per-tree work units and/or a soft wall-clock deadline. Exhausted
// trees degrade to StrategyBinPack and are listed in Result.Degraded —
// a budgeted mapping always produces a valid circuit.
type Budget = core.Budget

// Result is a mapping outcome: the circuit plus area statistics, and —
// for budgeted runs — the list of trees that degraded to bin packing.
type Result = core.Result

// DefaultOptions returns the paper's configuration for K-input LUTs:
// full decomposition search with node splitting above fanin ten.
func DefaultOptions(k int) Options { return core.DefaultOptions(k) }

// Engine selects the mapping algorithm (Options.Engine): the paper's
// fanout-free-tree DP, the MIS II-style baseline coverer, or the
// priority-cut DAG mapper. All engines emit the same Circuit
// representation, so Verify, simulation and provenance work unchanged.
type Engine = core.Engine

// Mapping engines.
const (
	// EngineTree is the paper's algorithm (the default).
	EngineTree = core.EngineTree
	// EngineMIS is the MIS II-style baseline run through Map.
	EngineMIS = core.EngineMIS
	// EngineCut is the priority-cut DAG mapper: K-feasible cut
	// enumeration with area-flow cover selection, the engine that sees
	// through reconvergent fanout (internal/cut).
	EngineCut = core.EngineCut
)

// ParseEngine resolves an engine name ("tree", "mis", "cut"; empty
// means tree) for -engine style flags.
func ParseEngine(s string) (Engine, error) { return core.ParseEngine(s) }

// Strategy selects the per-node decomposition search (see Options).
type Strategy = core.Strategy

// Decomposition strategies: the paper's exhaustive search (optimal per
// tree) and the Chortle-crf-style first-fit-decreasing bin packing
// (faster, unbounded fanin).
const (
	StrategyExhaustive = core.StrategyExhaustive
	StrategyBinPack    = core.StrategyBinPack
)

// ReadBLIF parses a combinational BLIF model into a Boolean network.
// Malformed input is rejected with a structured error (see the
// sentinels in errors.go); parser bugs surface as *InternalError, never
// as a panic.
func ReadBLIF(r io.Reader) (nw *Network, err error) {
	defer guard(&err)
	return blif.Read(r)
}

// ReadPLA parses an espresso-format two-level PLA (the native format of
// the MCNC benchmarks) and lowers its factored form to a Boolean
// network. Like ReadBLIF, it is panic-free: malformed input yields a
// structured error, parser bugs an *InternalError.
func ReadPLA(r io.Reader) (nw *Network, err error) {
	defer guard(&err)
	p, err := pla.Read(r)
	if err != nil {
		return nil, err
	}
	nt, err := p.ToNet("")
	if err != nil {
		return nil, err
	}
	return nt.Lower()
}

// WriteBLIF emits a Boolean network as BLIF.
func WriteBLIF(w io.Writer, nw *Network) error { return blif.Write(w, nw) }

// Map runs the Chortle algorithm: optimal (per fanout-free tree)
// covering of the network with K-input lookup tables. It is
// MapCtx(context.Background(), nw, opts).
func Map(nw *Network, opts Options) (*Result, error) {
	return MapCtx(context.Background(), nw, opts)
}

// MapCtx is Map under a context.Context. Cancellation or deadline
// expiry aborts the mapping promptly — the parallel pipeline observes
// the context between trees and the DP inner loops observe it every
// few thousand work units — returning ctx.Err() with all worker
// goroutines joined and all internal arenas returned to their pool.
//
// Search budgets (Options.Budget) are orthogonal to the context: a
// budget never fails the call, it degrades over-budget trees to the
// bin-packing strategy and lists them in Result.Degraded.
//
// MapCtx is panic-free: invalid inputs return structured errors
// (errors.Is-able against ErrCycle, ErrDuplicateName, ErrBadK, ...);
// an internal panic — in the calling goroutine or in a worker — is
// recovered into an *InternalError carrying its stack.
func MapCtx(ctx context.Context, nw *Network, opts Options) (res *Result, err error) {
	defer guard(&err)
	res, err = core.MapCtx(ctx, nw, opts)
	return res, wrapInternal(err)
}

// BaselineResult is the outcome of the MIS II-style baseline mapper.
type BaselineResult = mismap.Result

// MapBaseline maps the network with the paper's baseline: a DAGON/MIS-
// style structural tree coverer using the Section 4.1 library for K
// (complete for K = 2, 3; level-0-kernel incomplete for K = 4, 5).
func MapBaseline(nw *Network, k int) (res *BaselineResult, err error) {
	defer guard(&err)
	lib, err := mislib.ForK(k)
	if err != nil {
		return nil, err
	}
	return mismap.Map(nw, lib)
}

// Optimize runs the mini-MIS standard script on the network and returns
// the re-optimized equivalent — the preprocessing the paper applies to
// every benchmark before mapping ("optimized by the standard MIS II
// script").
func Optimize(nw *Network) (out *Network, err error) {
	defer guard(&err)
	nt, err := opt.FromNetwork(nw)
	if err != nil {
		return nil, err
	}
	nt.Optimize(opt.DefaultScript())
	return nt.Lower()
}

// Verify checks that a mapped circuit implements its source network:
// exhaustively up to 16 primary inputs, otherwise with the given number
// of random 64-pattern blocks.
func Verify(nw *Network, ckt *Circuit, patterns int, seed int64) error {
	return verify.NetworkVsCircuit(nw, ckt, patterns, seed)
}

// VerifyNetworks checks two Boolean networks against each other with
// the same exhaustive/random simulation policy as Verify.
func VerifyNetworks(a, b *Network, patterns int, seed int64) error {
	return verify.NetworkVsNetwork(a, b, patterns, seed)
}

// MapDuplicateCostAware maps with profitable logic duplication at
// fanout nodes: each candidate duplication is accepted only when the
// tree DP proves it reduces total LUT count — the profitable form of
// the paper's future-work item (naive duplication is
// Options.DuplicateFanoutLogic). Returns the result and the number of
// duplications accepted. Slower than Map (it re-costs the network per
// candidate).
func MapDuplicateCostAware(nw *Network, opts Options) (*Result, int, error) {
	return MapDuplicateCostAwareCtx(context.Background(), nw, opts)
}

// MapDuplicateCostAwareCtx is MapDuplicateCostAware under a context.
// Cancellation aborts both the candidate search and the final mapping.
// A wall-clock budget (Options.Budget.WallClock) bounds the search
// phase: when it expires the candidates accepted so far are kept and
// the final mapping proceeds, so the call still returns a valid result.
func MapDuplicateCostAwareCtx(ctx context.Context, nw *Network, opts Options) (res *Result, accepted int, err error) {
	defer guard(&err)
	res, accepted, err = core.MapDuplicateCostAwareCtx(ctx, nw, opts)
	return res, accepted, wrapInternal(err)
}

// Observability. Setting Options.Observer streams structured events
// from every phase of a mapping run — phase boundaries, per-tree solves
// with metered work units, memo hits, budget degradations, per-LUT
// detail — to any Observer implementation. Observation is strictly
// read-only: the mapped circuit is byte-identical with or without an
// observer, and a nil Observer costs the hot path nothing.

// Event is one structured observation from a mapping run; its Kind
// determines which fields are meaningful.
type Event = obs.Event

// EventKind discriminates observability events (EventTreeSolve,
// EventMemoHit, ...).
type EventKind = obs.Kind

// Event kinds, re-exported for sinks that switch on Event.Kind.
const (
	EventMapStart        = obs.KindMapStart
	EventMapEnd          = obs.KindMapEnd
	EventPhaseStart      = obs.KindPhaseStart
	EventPhaseEnd        = obs.KindPhaseEnd
	EventTreeSolve       = obs.KindTreeSolve
	EventMemoHit         = obs.KindMemoHit
	EventTemplateReplay  = obs.KindTemplateReplay
	EventBudgetExhausted = obs.KindBudgetExhausted
	EventTreeDegraded    = obs.KindTreeDegraded
	EventLUT             = obs.KindLUT
	EventArenaStats      = obs.KindArenaStats
	EventDupAccepted     = obs.KindDupAccepted
)

// Observer receives mapping events (Options.Observer). Implementations
// must tolerate concurrent calls: the parallel pipeline emits from
// worker goroutines.
type Observer = obs.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = obs.Func

// MultiObserver fans events out to several observers in order.
type MultiObserver = obs.Multi

// Collector is a concurrency-safe in-memory Observer that records every
// event and can aggregate them into a MapReport.
type Collector = obs.Collector

// MapReport aggregates an event stream into per-phase wall times, LUT
// histograms, memo hit rates, and degradation detail (see
// Collector.Report and AggregateEvents).
type MapReport = obs.Report

// AggregateEvents folds a recorded event stream into a MapReport.
func AggregateEvents(events []Event) *MapReport { return obs.Aggregate(events) }

// JSONLObserver streams each event as one JSON line to a writer (the
// cmd/chortle -trace format).
type JSONLObserver = obs.JSONL

// NewJSONLObserver returns a JSONLObserver writing to w. Check Err
// after the run for the first write error, if any.
func NewJSONLObserver(w io.Writer) *JSONLObserver { return obs.NewJSONL(w) }

// SharedCache is a process-wide, concurrency-safe cache of tree-shape
// solutions, shared across Map calls through Options.SharedCache. A
// warm cache turns the per-shape DP solve and most of reconstruction
// into O(tree) pointer work; every hit is verified against a canonical
// shape encoding before reuse, and cached state is immutable after
// publish, so any number of concurrent Map calls may share one cache.
// The emitted circuit is byte-identical with the cache warm, cold, or
// absent.
//
// A SharedCache can outlive its process: WriteSnapshot serializes the
// resident shapes to a versioned, checksummed stream and
// RestoreSnapshot loads one back, rejecting any truncated, corrupted,
// or incompatible snapshot wholesale (the cache then simply starts
// cold). Shed evicts a fraction of resident shapes under memory
// pressure. cmd/chortled wires all three into its serving loop.
type SharedCache = core.SharedShapeCache

// SharedCacheConfig bounds a SharedCache: shard count (lock striping),
// resident entry count, and accounted bytes. Zero fields take defaults
// (16 shards, 65536 entries, 256 MiB).
type SharedCacheConfig = core.SharedCacheConfig

// CacheStats is a point-in-time snapshot of a SharedCache: hit, miss,
// insert and eviction counters plus resident entry and byte totals.
type CacheStats = shapecache.Stats

// NewSharedCache returns an empty cross-run shape cache honoring cfg.
func NewSharedCache(cfg SharedCacheConfig) *SharedCache {
	return core.NewSharedShapeCache(cfg)
}

// CLBSpec describes a commercial logic block (LUT pair with a shared
// input budget) for post-mapping block packing — the paper's
// "commercial FPGA architectures" future-work direction.
type CLBSpec = lut.CLBSpec

// XC3000 is the Xilinx 3000-series block profile (5 inputs, 2 LUTs).
var XC3000 = lut.XC3000
