// Package chortle is a from-scratch reproduction of the Chortle
// technology mapper for lookup table-based FPGAs (Francis, Rose, Chung,
// DAC 1990). It maps optimized multi-level Boolean networks into
// circuits of K-input lookup tables, minimizing LUT count, and ships
// with everything the paper's evaluation needs: a BLIF front end, a
// mini-MIS logic optimizer, a MIS II-style library mapper as the
// baseline, the MCNC-89-profile benchmark suite, and a harness that
// regenerates the paper's Tables 1-4.
//
// Quick start:
//
//	nw, _ := chortle.ReadBLIF(file)
//	res, _ := chortle.Map(nw, chortle.DefaultOptions(4))
//	fmt.Println(res.LUTs)
//	res.Circuit.WriteBLIF(os.Stdout)
package chortle

import (
	"fmt"
	"io"

	"chortle/internal/blif"
	"chortle/internal/core"
	"chortle/internal/lut"
	"chortle/internal/mislib"
	"chortle/internal/mismap"
	"chortle/internal/network"
	"chortle/internal/opt"
	"chortle/internal/pla"
	"chortle/internal/verify"
)

// Network is a technology-independent Boolean network: a DAG of AND/OR
// nodes with polarized edges, the mapper's input representation.
type Network = network.Network

// Circuit is a mapped netlist of K-input lookup tables, each carrying
// its programmed truth table.
type Circuit = lut.Circuit

// Options configures the Chortle mapper (see DefaultOptions).
type Options = core.Options

// Result is a mapping outcome: the circuit plus area statistics.
type Result = core.Result

// DefaultOptions returns the paper's configuration for K-input LUTs:
// full decomposition search with node splitting above fanin ten.
func DefaultOptions(k int) Options { return core.DefaultOptions(k) }

// Strategy selects the per-node decomposition search (see Options).
type Strategy = core.Strategy

// Decomposition strategies: the paper's exhaustive search (optimal per
// tree) and the Chortle-crf-style first-fit-decreasing bin packing
// (faster, unbounded fanin).
const (
	StrategyExhaustive = core.StrategyExhaustive
	StrategyBinPack    = core.StrategyBinPack
)

// ReadBLIF parses a combinational BLIF model into a Boolean network.
func ReadBLIF(r io.Reader) (*Network, error) { return blif.Read(r) }

// ReadPLA parses an espresso-format two-level PLA (the native format of
// the MCNC benchmarks) and lowers its factored form to a Boolean
// network.
func ReadPLA(r io.Reader) (*Network, error) {
	p, err := pla.Read(r)
	if err != nil {
		return nil, err
	}
	nt, err := p.ToNet("")
	if err != nil {
		return nil, err
	}
	return nt.Lower()
}

// WriteBLIF emits a Boolean network as BLIF.
func WriteBLIF(w io.Writer, nw *Network) error { return blif.Write(w, nw) }

// Map runs the Chortle algorithm: optimal (per fanout-free tree)
// covering of the network with K-input lookup tables.
func Map(nw *Network, opts Options) (*Result, error) { return core.Map(nw, opts) }

// BaselineResult is the outcome of the MIS II-style baseline mapper.
type BaselineResult = mismap.Result

// MapBaseline maps the network with the paper's baseline: a DAGON/MIS-
// style structural tree coverer using the Section 4.1 library for K
// (complete for K = 2, 3; level-0-kernel incomplete for K = 4, 5).
func MapBaseline(nw *Network, k int) (*BaselineResult, error) {
	lib, err := mislib.ForK(k)
	if err != nil {
		return nil, err
	}
	return mismap.Map(nw, lib)
}

// Optimize runs the mini-MIS standard script on the network and returns
// the re-optimized equivalent — the preprocessing the paper applies to
// every benchmark before mapping ("optimized by the standard MIS II
// script").
func Optimize(nw *Network) (*Network, error) {
	nt, err := opt.FromNetwork(nw)
	if err != nil {
		return nil, err
	}
	nt.Optimize(opt.DefaultScript())
	return nt.Lower()
}

// Verify checks that a mapped circuit implements its source network:
// exhaustively up to 16 primary inputs, otherwise with the given number
// of random 64-pattern blocks.
func Verify(nw *Network, ckt *Circuit, patterns int, seed int64) error {
	return verify.NetworkVsCircuit(nw, ckt, patterns, seed)
}

// VerifyNetworks checks two Boolean networks against each other with
// the same exhaustive/random simulation policy as Verify.
func VerifyNetworks(a, b *Network, patterns int, seed int64) error {
	return verify.NetworkVsNetwork(a, b, patterns, seed)
}

// MapDuplicateCostAware maps with profitable logic duplication at
// fanout nodes: each candidate duplication is accepted only when the
// tree DP proves it reduces total LUT count — the profitable form of
// the paper's future-work item (naive duplication is
// Options.DuplicateFanoutLogic). Returns the result and the number of
// duplications accepted. Slower than Map (it re-costs the network per
// candidate).
func MapDuplicateCostAware(nw *Network, opts Options) (*Result, int, error) {
	return core.MapDuplicateCostAware(nw, opts)
}

// CLBSpec describes a commercial logic block (LUT pair with a shared
// input budget) for post-mapping block packing — the paper's
// "commercial FPGA architectures" future-work direction.
type CLBSpec = lut.CLBSpec

// XC3000 is the Xilinx 3000-series block profile (5 inputs, 2 LUTs).
var XC3000 = lut.XC3000

// MustMap is a convenience for examples and tests: Map or panic.
func MustMap(nw *Network, opts Options) *Result {
	res, err := Map(nw, opts)
	if err != nil {
		panic(fmt.Sprintf("chortle: %v", err))
	}
	return res
}
