package chortle

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"chortle/internal/bench"
	"chortle/internal/opt"
	"chortle/internal/verify"
)

// The comparison harness that regenerates the paper's Tables 1-4: for
// each MCNC-profile benchmark, optimize with the mini-MIS script, map
// with both the MIS-style baseline and Chortle, and report LUT counts,
// percentage difference and wall-clock times — the same columns the
// paper prints ("# tables MIS", "# tables Chortle", "%", "t (sec.)").

// Row is one benchmark line of a comparison table.
type Row struct {
	Circuit     string
	MISLUTs     int
	ChortleLUTs int
	// DiffPct is the paper's "%" column: how many fewer LUTs Chortle
	// used, as a percentage of the MIS count (positive = Chortle wins).
	DiffPct     float64
	MISTime     time.Duration
	ChortleTime time.Duration
	Synthetic   bool
	// Report carries the Chortle run's aggregated observability report
	// when CompareOptions.Stats is set (nil otherwise).
	Report *MapReport
}

// Table is a full comparison table for one K.
type Table struct {
	K    int
	Rows []Row
}

// AverageDiffPct is the mean of the per-circuit percentage differences,
// the figure the paper quotes per K (≈0%, 6%, 9%, 14% for K = 2..5).
func (t Table) AverageDiffPct() float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range t.Rows {
		sum += r.DiffPct
	}
	return sum / float64(len(t.Rows))
}

// SpeedupRange returns the min and max Chortle-vs-MIS speed ratios
// (MIS time / Chortle time) across the table's rows — the paper claims
// 1x to 10x.
func (t Table) SpeedupRange() (lo, hi float64) {
	lo, hi = -1, -1
	for _, r := range t.Rows {
		if r.ChortleTime <= 0 {
			continue
		}
		s := float64(r.MISTime) / float64(r.ChortleTime)
		if lo < 0 || s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return lo, hi
}

// CompareOptions tunes a comparison run.
type CompareOptions struct {
	// Circuits restricts the run to the named benchmarks (nil = all 12).
	Circuits []string
	// Verify cross-checks both mapped circuits against the optimized
	// network by simulation (adds runtime; on by default in the CLI).
	Verify bool
	// VerifyPatterns is the number of random 64-pattern blocks used for
	// circuits too wide for exhaustive checking (default 16).
	VerifyPatterns int
	// Sequential disables the parallel DP pipeline for the Chortle runs,
	// timing the single-threaded mapper (the emitted circuits are
	// identical either way).
	Sequential bool
	// Timeout is a hard per-circuit wall-clock limit on the Chortle
	// mapping (0 = none). A circuit that exceeds it fails the run with
	// context.DeadlineExceeded.
	Timeout time.Duration
	// Budget bounds the per-tree exhaustive search in DP work units
	// (0 = unlimited). Over-budget trees degrade to bin packing; the
	// comparison still verifies and reports them, so a budgeted table
	// is an upper bound on Chortle's LUT counts.
	Budget int64
	// Stats attaches an observer to every Chortle mapping and stores the
	// aggregated report in Row.Report (phase times, memo hit rates,
	// degradations). Observation never changes the mapped circuit, but
	// the collector adds a little overhead to ChortleTime.
	Stats bool
	// Observer, when non-nil, additionally receives every Chortle
	// mapping's event stream (all circuits, in row order) — the CLI's
	// -trace sink. Composes with Stats.
	Observer Observer
}

// CompareSuite maps the benchmark suite at the given K with both
// mappers and returns the comparison table.
func CompareSuite(k int, o CompareOptions) (Table, error) {
	if o.VerifyPatterns <= 0 {
		o.VerifyPatterns = 16
	}
	circuits := bench.Suite()
	if len(o.Circuits) > 0 {
		var sel []bench.Circuit
		for _, name := range o.Circuits {
			c, err := bench.ByName(name)
			if err != nil {
				return Table{}, err
			}
			sel = append(sel, c)
		}
		circuits = sel
	}
	tbl := Table{K: k}
	for _, c := range circuits {
		row, err := compareOne(c, k, o)
		if err != nil {
			return Table{}, fmt.Errorf("circuit %s: %w", c.Name, err)
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

func compareOne(c bench.Circuit, k int, o CompareOptions) (Row, error) {
	nw, err := bench.Optimized(c)
	if err != nil {
		return Row{}, err
	}

	t0 := time.Now()
	mres, err := MapBaseline(nw, k)
	if err != nil {
		return Row{}, err
	}
	misTime := time.Since(t0)

	copts := DefaultOptions(k)
	if o.Sequential {
		copts.Parallel = false
	}
	copts.Budget.WorkUnits = o.Budget
	var col *Collector
	if o.Stats {
		col = &Collector{}
	}
	switch {
	case col != nil && o.Observer != nil:
		copts.Observer = MultiObserver{col, o.Observer}
	case col != nil:
		copts.Observer = col
	case o.Observer != nil:
		copts.Observer = o.Observer
	}
	ctx := context.Background()
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	t1 := time.Now()
	cres, err := MapCtx(ctx, nw, copts)
	if err != nil {
		return Row{}, err
	}
	chTime := time.Since(t1)

	if o.Verify {
		if err := verify.NetworkVsCircuit(nw, mres.Circuit, o.VerifyPatterns, 1); err != nil {
			return Row{}, fmt.Errorf("baseline circuit wrong: %w", err)
		}
		if err := verify.NetworkVsCircuit(nw, cres.Circuit, o.VerifyPatterns, 1); err != nil {
			return Row{}, fmt.Errorf("chortle circuit wrong: %w", err)
		}
	}

	diff := 0.0
	if mres.LUTs > 0 {
		diff = 100 * float64(mres.LUTs-cres.LUTs) / float64(mres.LUTs)
	}
	row := Row{
		Circuit:     c.Name,
		MISLUTs:     mres.LUTs,
		ChortleLUTs: cres.LUTs,
		DiffPct:     diff,
		MISTime:     misTime,
		ChortleTime: chTime,
		Synthetic:   c.Synthetic,
	}
	if col != nil {
		row.Report = col.Report()
	}
	return row, nil
}

// FormatRows renders the table's header and benchmark rows in the
// paper's layout, without the trailing summary (see FormatSummary).
func (t Table) FormatRows() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table: Results, K=%d\n", t.K)
	fmt.Fprintf(&sb, "%-8s %9s %9s %7s %10s %10s\n",
		"Circuit", "# MIS", "# Chortle", "%", "t MIS", "t Chortle")
	for _, r := range t.Rows {
		mark := ""
		if r.Synthetic {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%-8s %9d %9d %6.1f%% %10s %10s\n",
			r.Circuit+mark, r.MISLUTs, r.ChortleLUTs, r.DiffPct,
			fmtDur(r.MISTime), fmtDur(r.ChortleTime))
	}
	return sb.String()
}

// FormatSummary renders the table's average-difference and speedup line
// — the paper's per-K quote. When printing several tables, emit every
// table's rows first and collect the summaries into one final block so
// they are not interleaved between tables.
func (t Table) FormatSummary() string {
	lo, hi := t.SpeedupRange()
	return fmt.Sprintf("K=%d: average %5.1f%%   speedup %.1fx..%.1fx\n",
		t.K, t.AverageDiffPct(), lo, hi)
}

// Format renders the table in the paper's layout: rows followed by the
// summary and the synthetic-circuit footnote.
func (t Table) Format() string {
	var sb strings.Builder
	sb.WriteString(t.FormatRows())
	lo, hi := t.SpeedupRange()
	fmt.Fprintf(&sb, "%-8s %27.1f%%   speedup %.1fx..%.1fx\n", "average",
		t.AverageDiffPct(), lo, hi)
	fmt.Fprintf(&sb, "(* synthetic stand-in; see DESIGN.md)\n")
	return sb.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond / 10).String()
}

// SuiteNames lists the paper's benchmark circuits in table order.
func SuiteNames() []string {
	var out []string
	for _, c := range bench.Suite() {
		out = append(out, c.Name)
	}
	return out
}

// ExtendedSuiteNames lists the additional (non-paper) benchmark
// circuits: classic MCNC two-level functions rebuilt from behaviour.
func ExtendedSuiteNames() []string {
	var out []string
	for _, c := range bench.ExtendedSuite() {
		out = append(out, c.Name)
	}
	return out
}

// BenchmarkNetwork builds and optimizes one suite circuit by name —
// the exact network the comparison maps.
func BenchmarkNetwork(name string) (*Network, error) {
	c, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return bench.Optimized(c)
}

// RawBenchmarkNetwork builds one suite circuit without optimization.
func RawBenchmarkNetwork(name string) (*Network, error) {
	c, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return c.Build(), nil
}

// OptimizeForBench applies the bounded benchmark-grade script (the one
// CompareSuite uses) rather than the full default script.
func OptimizeForBench(nw *Network) (*Network, error) {
	nt, err := opt.FromNetwork(nw)
	if err != nil {
		return nil, err
	}
	nt.Optimize(bench.OptimizeOptions())
	return nt.Lower()
}

// sortedCopy is used by tests to compare row sets order-insensitively.
func sortedCopy(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	sort.Slice(out, func(i, j int) bool { return out[i].Circuit < out[j].Circuit })
	return out
}
