package chortle

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"chortle/internal/bench"
	"chortle/internal/opt"
	"chortle/internal/verify"
)

// The comparison harness that regenerates the paper's Tables 1-4: for
// each MCNC-profile benchmark, optimize with the mini-MIS script, map
// with both the MIS-style baseline and Chortle, and report LUT counts,
// percentage difference and wall-clock times — the same columns the
// paper prints ("# tables MIS", "# tables Chortle", "%", "t (sec.)").

// Row is one benchmark line of a comparison table. Beside the MIS
// baseline it carries one column group per compared engine (the tree
// DP under the paper's "Chortle" name, and the priority-cut DAG
// mapper), each with LUT count, circuit depth and wall time — depth is
// reported per engine so an area win cannot silently hide a depth
// regression.
type Row struct {
	Circuit  string
	MISLUTs  int
	MISDepth int
	MISTime  time.Duration

	// ChortleLUTs/ChortleDepth/ChortleTime are the tree engine's
	// columns; DiffPct is the paper's "%" column: how many fewer LUTs
	// the tree engine used, as a percentage of the MIS count
	// (positive = Chortle wins). Zero when the run excluded the tree
	// engine (CompareOptions.Engines).
	ChortleLUTs  int
	ChortleDepth int
	DiffPct      float64
	ChortleTime  time.Duration

	// CutLUTs/CutDepth/CutDiffPct/CutTime are the priority-cut
	// engine's columns, with the same conventions. Zero when the run
	// excluded the cut engine.
	CutLUTs    int
	CutDepth   int
	CutDiffPct float64
	CutTime    time.Duration

	Synthetic bool
	// Report carries the primary engine run's aggregated observability
	// report when CompareOptions.Stats is set (nil otherwise). The
	// primary engine is the first in CompareOptions.Engines.
	Report *MapReport
}

// Cols returns the row's column group for one engine. ok is false for
// EngineMIS (the baseline has no diff column) only when e is unknown.
func (r Row) Cols(e Engine) (luts, depth int, diff float64, t time.Duration, ok bool) {
	switch e {
	case EngineTree:
		return r.ChortleLUTs, r.ChortleDepth, r.DiffPct, r.ChortleTime, true
	case EngineCut:
		return r.CutLUTs, r.CutDepth, r.CutDiffPct, r.CutTime, true
	case EngineMIS:
		return r.MISLUTs, r.MISDepth, 0, r.MISTime, true
	}
	return 0, 0, 0, 0, false
}

// Table is a full comparison table for one K.
type Table struct {
	K int
	// Engines lists the engines compared against the MIS baseline, in
	// column order; the first is the primary engine the summary
	// figures quote.
	Engines []Engine
	Rows    []Row
}

// primary returns the engine the summary statistics quote.
func (t Table) primary() Engine {
	if len(t.Engines) == 0 {
		return EngineTree
	}
	return t.Engines[0]
}

// AverageDiffPct is the mean of the primary engine's per-circuit
// percentage differences, the figure the paper quotes per K
// (≈0%, 6%, 9%, 14% for K = 2..5 with the tree engine).
func (t Table) AverageDiffPct() float64 { return t.averageDiffPct(t.primary()) }

func (t Table) averageDiffPct(e Engine) float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range t.Rows {
		_, _, diff, _, _ := r.Cols(e)
		sum += diff
	}
	return sum / float64(len(t.Rows))
}

// SpeedupRange returns the min and max primary-engine-vs-MIS speed
// ratios (MIS time / engine time) across the table's rows — the paper
// claims 1x to 10x for the tree engine.
func (t Table) SpeedupRange() (lo, hi float64) {
	lo, hi = -1, -1
	for _, r := range t.Rows {
		_, _, _, et, _ := r.Cols(t.primary())
		if et <= 0 {
			continue
		}
		s := float64(r.MISTime) / float64(et)
		if lo < 0 || s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return lo, hi
}

// CompareOptions tunes a comparison run.
type CompareOptions struct {
	// Circuits restricts the run to the named benchmarks (nil = all 12).
	Circuits []string
	// Verify cross-checks both mapped circuits against the optimized
	// network by simulation (adds runtime; on by default in the CLI).
	Verify bool
	// VerifyPatterns is the number of random 64-pattern blocks used for
	// circuits too wide for exhaustive checking (default 16).
	VerifyPatterns int
	// Sequential disables the parallel DP pipeline for the Chortle runs,
	// timing the single-threaded mapper (the emitted circuits are
	// identical either way).
	Sequential bool
	// Timeout is a hard per-circuit wall-clock limit on the Chortle
	// mapping (0 = none). A circuit that exceeds it fails the run with
	// context.DeadlineExceeded.
	Timeout time.Duration
	// Budget bounds the per-tree exhaustive search in DP work units
	// (0 = unlimited). Over-budget trees degrade to bin packing; the
	// comparison still verifies and reports them, so a budgeted table
	// is an upper bound on Chortle's LUT counts.
	Budget int64
	// Stats attaches an observer to every Chortle mapping and stores the
	// aggregated report in Row.Report (phase times, memo hit rates,
	// degradations). Observation never changes the mapped circuit, but
	// the collector adds a little overhead to ChortleTime.
	Stats bool
	// Observer, when non-nil, additionally receives every primary-
	// engine mapping's event stream (all circuits, in row order) — the
	// CLI's -trace sink. Composes with Stats.
	Observer Observer
	// Engines lists the engines to map beside the MIS baseline, in
	// column order; nil means tree then cut. The MIS baseline is
	// always the reference column and cannot appear in the list. The
	// first engine is primary: Stats, Observer, Timeout-sensitive
	// summary figures and Row.Report attach to it.
	Engines []Engine
}

// engines resolves the engine list.
func (o CompareOptions) engines() ([]Engine, error) {
	if len(o.Engines) == 0 {
		return []Engine{EngineTree, EngineCut}, nil
	}
	for _, e := range o.Engines {
		if e == EngineMIS {
			return nil, fmt.Errorf("chortle: the MIS baseline is always the reference column; compare tree and/or cut engines against it")
		}
	}
	return o.Engines, nil
}

// CompareSuite maps the benchmark suite at the given K with both
// mappers and returns the comparison table.
func CompareSuite(k int, o CompareOptions) (Table, error) {
	if o.VerifyPatterns <= 0 {
		o.VerifyPatterns = 16
	}
	engines, err := o.engines()
	if err != nil {
		return Table{}, err
	}
	circuits := bench.Suite()
	if len(o.Circuits) > 0 {
		var sel []bench.Circuit
		for _, name := range o.Circuits {
			c, err := bench.ByName(name)
			if err != nil {
				return Table{}, err
			}
			sel = append(sel, c)
		}
		circuits = sel
	}
	tbl := Table{K: k, Engines: engines}
	for _, c := range circuits {
		row, err := compareOne(c, k, o, engines)
		if err != nil {
			return Table{}, fmt.Errorf("circuit %s: %w", c.Name, err)
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

func compareOne(c bench.Circuit, k int, o CompareOptions, engines []Engine) (Row, error) {
	nw, err := bench.Optimized(c)
	if err != nil {
		return Row{}, err
	}

	t0 := time.Now()
	mres, err := MapBaseline(nw, k)
	if err != nil {
		return Row{}, err
	}
	misTime := time.Since(t0)
	misStats, err := mres.Circuit.Stats()
	if err != nil {
		return Row{}, err
	}
	if o.Verify {
		if err := verify.NetworkVsCircuit(nw, mres.Circuit, o.VerifyPatterns, 1); err != nil {
			return Row{}, fmt.Errorf("baseline circuit wrong: %w", err)
		}
	}

	row := Row{
		Circuit:   c.Name,
		MISLUTs:   mres.LUTs,
		MISDepth:  misStats.Depth,
		MISTime:   misTime,
		Synthetic: c.Synthetic,
	}
	for i, eng := range engines {
		copts := DefaultOptions(k)
		copts.Engine = eng
		if o.Sequential {
			copts.Parallel = false
		}
		copts.Budget.WorkUnits = o.Budget
		var col *Collector
		if i == 0 {
			// Observability attaches to the primary engine only, so the
			// -stats report and the -trace stream describe one engine's
			// runs rather than an interleaving.
			if o.Stats {
				col = &Collector{}
			}
			switch {
			case col != nil && o.Observer != nil:
				copts.Observer = MultiObserver{col, o.Observer}
			case col != nil:
				copts.Observer = col
			case o.Observer != nil:
				copts.Observer = o.Observer
			}
		}
		ctx := context.Background()
		if o.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, o.Timeout)
			defer cancel()
		}
		t1 := time.Now()
		res, err := MapCtx(ctx, nw, copts)
		if err != nil {
			return Row{}, fmt.Errorf("%v engine: %w", eng, err)
		}
		engTime := time.Since(t1)
		stats, err := res.Circuit.Stats()
		if err != nil {
			return Row{}, err
		}
		if o.Verify {
			if err := verify.NetworkVsCircuit(nw, res.Circuit, o.VerifyPatterns, 1); err != nil {
				return Row{}, fmt.Errorf("%v circuit wrong: %w", eng, err)
			}
		}
		diff := 0.0
		if mres.LUTs > 0 {
			diff = 100 * float64(mres.LUTs-res.LUTs) / float64(mres.LUTs)
		}
		switch eng {
		case EngineTree:
			row.ChortleLUTs, row.ChortleDepth = res.LUTs, stats.Depth
			row.DiffPct, row.ChortleTime = diff, engTime
		case EngineCut:
			row.CutLUTs, row.CutDepth = res.LUTs, stats.Depth
			row.CutDiffPct, row.CutTime = diff, engTime
		}
		if col != nil {
			row.Report = col.Report()
		}
	}
	return row, nil
}

// formatEngines returns the table's engine column order, defaulting to
// the tree engine for tables built before Engines existed.
func (t Table) formatEngines() []Engine {
	if len(t.Engines) == 0 {
		return []Engine{EngineTree}
	}
	return t.Engines
}

// FormatRows renders the table's header and benchmark rows in the
// paper's layout extended with one column group per compared engine —
// LUT count, depth and the "%" delta against MIS — followed by the
// wall times. Depth rides beside every LUT column so area wins cannot
// hide depth regressions.
func (t Table) FormatRows() string {
	engines := t.formatEngines()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table: Results, K=%d\n", t.K)
	fmt.Fprintf(&sb, "%-8s %8s %4s", "Circuit", "# MIS", "d")
	for _, e := range engines {
		fmt.Fprintf(&sb, " %8s %4s %7s", "# "+e.String(), "d", "%")
	}
	fmt.Fprintf(&sb, " %10s", "t MIS")
	for _, e := range engines {
		fmt.Fprintf(&sb, " %10s", "t "+e.String())
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		mark := ""
		if r.Synthetic {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%-8s %8d %4d", r.Circuit+mark, r.MISLUTs, r.MISDepth)
		for _, e := range engines {
			luts, depth, diff, _, _ := r.Cols(e)
			fmt.Fprintf(&sb, " %8d %4d %6.1f%%", luts, depth, diff)
		}
		fmt.Fprintf(&sb, " %10s", fmtDur(r.MISTime))
		for _, e := range engines {
			_, _, _, et, _ := r.Cols(e)
			fmt.Fprintf(&sb, " %10s", fmtDur(et))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatSummary renders the table's average-difference and speedup line
// — the paper's per-K quote, with one average per compared engine.
// When printing several tables, emit every table's rows first and
// collect the summaries into one final block so they are not
// interleaved between tables.
func (t Table) FormatSummary() string {
	engines := t.formatEngines()
	var sb strings.Builder
	fmt.Fprintf(&sb, "K=%d: average", t.K)
	for i, e := range engines {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, " %5.1f%% %s", t.averageDiffPct(e), e)
	}
	lo, hi := t.SpeedupRange()
	fmt.Fprintf(&sb, "   speedup %.1fx..%.1fx (%s)\n", lo, hi, t.primary())
	return sb.String()
}

// Format renders the table in the paper's layout: rows followed by the
// summary and the synthetic-circuit footnote.
func (t Table) Format() string {
	var sb strings.Builder
	sb.WriteString(t.FormatRows())
	sb.WriteString(t.FormatSummary())
	fmt.Fprintf(&sb, "(* synthetic stand-in; see DESIGN.md)\n")
	return sb.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond / 10).String()
}

// SuiteNames lists the paper's benchmark circuits in table order.
func SuiteNames() []string {
	var out []string
	for _, c := range bench.Suite() {
		out = append(out, c.Name)
	}
	return out
}

// ExtendedSuiteNames lists the additional (non-paper) benchmark
// circuits: classic MCNC two-level functions rebuilt from behaviour.
func ExtendedSuiteNames() []string {
	var out []string
	for _, c := range bench.ExtendedSuite() {
		out = append(out, c.Name)
	}
	return out
}

// BenchmarkNetwork builds and optimizes one suite circuit by name —
// the exact network the comparison maps.
func BenchmarkNetwork(name string) (*Network, error) {
	c, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return bench.Optimized(c)
}

// RawBenchmarkNetwork builds one suite circuit without optimization.
func RawBenchmarkNetwork(name string) (*Network, error) {
	c, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return c.Build(), nil
}

// OptimizeForBench applies the bounded benchmark-grade script (the one
// CompareSuite uses) rather than the full default script.
func OptimizeForBench(nw *Network) (*Network, error) {
	nt, err := opt.FromNetwork(nw)
	if err != nil {
		return nil, err
	}
	nt.Optimize(bench.OptimizeOptions())
	return nt.Lower()
}

// sortedCopy is used by tests to compare row sets order-insensitively.
func sortedCopy(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	sort.Slice(out, func(i, j int) bool { return out[i].Circuit < out[j].Circuit })
	return out
}
