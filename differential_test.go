package chortle

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"chortle/internal/bench"
	"chortle/internal/network"
	"chortle/internal/verify"
)

// The cross-engine differential harness: all three engines — the
// paper's tree DP, the MIS II-style baseline, and the priority-cut DAG
// mapper — must implement the same function on every bundled benchmark
// at every K. Each engine's circuit is simulated against the unmapped
// network and directly against the other engines' circuits under the
// 64-way simulator, so a functional divergence in any engine fails
// here with the circuit, K, and first differing output named.

// diffNets caches the optimized benchmark networks across the
// differential tests (bench.Optimized is the expensive part).
var (
	diffOnce sync.Once
	diffNets map[string]*network.Network
)

func differentialSuite(t *testing.T) map[string]*network.Network {
	t.Helper()
	diffOnce.Do(func() {
		diffNets = make(map[string]*network.Network)
		for _, c := range goldenCircuits() {
			nw, err := bench.Optimized(c)
			if err != nil {
				t.Fatalf("preparing %s: %v", c.Name, err)
			}
			diffNets[c.Name] = nw
		}
	})
	return diffNets
}

// simPoints derives the shared input/output name lists two circuits of
// the same network are compared over (latch data inputs included).
func simPoints(nw *network.Network) (inputs, outputs []string) {
	for _, in := range nw.Inputs {
		inputs = append(inputs, in.Name)
	}
	for _, o := range nw.Outputs {
		outputs = append(outputs, o.Name)
	}
	for _, l := range nw.Latches {
		outputs = append(outputs, network.LatchKey(l.Q))
	}
	sort.Strings(outputs)
	return inputs, outputs
}

// exhaustiveDiffLimit is the input count up to which the differential
// harness compares all 2^n minterms; above it, 64 seeded random
// 64-pattern blocks. Lower than verify.ExhaustiveLimit because the
// harness simulates four designs per block across five Ks — at 16
// inputs the exhaustive sweep alone would dominate the whole suite.
const exhaustiveDiffLimit = 12

// assertSimulateIdentical simulates every design on the same input
// blocks and requires identical output words everywhere: design 0 is
// the reference (the unmapped network), so a mismatch names the
// diverging engine, the output, and the block.
func assertSimulateIdentical(t *testing.T, names []string, designs []verify.Simulatable, inputs, outputs []string, label string) {
	t.Helper()
	check := func(assign map[string]uint64, mask uint64, context string) {
		ref, err := designs[0].Simulate(assign)
		if err != nil {
			t.Fatalf("%s: simulating %s: %v", label, names[0], err)
		}
		for i := 1; i < len(designs); i++ {
			got, err := designs[i].Simulate(assign)
			if err != nil {
				t.Fatalf("%s: simulating %s: %v", label, names[i], err)
			}
			for _, o := range outputs {
				if ref[o]&mask != got[o]&mask {
					t.Fatalf("%s: %s output %q differs from %s %s: %016x vs %016x",
						label, names[i], o, names[0], context, got[o]&mask, ref[o]&mask)
				}
			}
		}
	}
	if len(inputs) <= exhaustiveDiffLimit {
		total := uint64(1) << uint(len(inputs))
		for base := uint64(0); base < total; base += 64 {
			assign := make(map[string]uint64, len(inputs))
			for i, in := range inputs {
				var w uint64
				for j := uint64(0); j < 64 && base+j < total; j++ {
					if (base+j)>>uint(i)&1 == 1 {
						w |= 1 << j
					}
				}
				assign[in] = w
			}
			mask := ^uint64(0)
			if total-base < 64 {
				mask = 1<<(total-base) - 1
			}
			check(assign, mask, fmt.Sprintf("at minterms %d..", base))
		}
		return
	}
	rng := rand.New(rand.NewSource(1))
	for p := 0; p < 64; p++ {
		assign := make(map[string]uint64, len(inputs))
		for _, in := range inputs {
			assign[in] = rng.Uint64()
		}
		check(assign, ^uint64(0), fmt.Sprintf("on random block %d", p))
	}
}

func TestCrossEngineDifferential(t *testing.T) {
	nets := differentialSuite(t)
	engines := []Engine{EngineTree, EngineMIS, EngineCut}
	for _, c := range goldenCircuits() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			nw := nets[c.Name]
			inputs, outputs := simPoints(nw)
			for k := 2; k <= 6; k++ {
				if testing.Short() && k != 3 && k != 5 {
					continue
				}
				names := []string{"network"}
				designs := []verify.Simulatable{nw}
				for _, eng := range engines {
					opts := DefaultOptions(k)
					opts.Engine = eng
					res, err := Map(nw, opts)
					if err != nil {
						t.Fatalf("K=%d engine=%s: %v", k, eng, err)
					}
					names = append(names, eng.String())
					designs = append(designs, res.Circuit)
				}
				assertSimulateIdentical(t, names, designs, inputs, outputs,
					fmt.Sprintf("%s K=%d", c.Name, k))
			}
		})
	}
}

// TestCutBeatsTreeOnReconvergent pins the cut engine's quality claim:
// on the benchmarks whose reconvergent structure the fanout-free tree
// decomposition is known to map poorly, the priority-cut cover must
// strictly beat the tree DP's LUT count at K=3. These margins are also
// recorded in the goldens; this test states the claim directly.
func TestCutBeatsTreeOnReconvergent(t *testing.T) {
	nets := differentialSuite(t)
	losers := []string{"count", "9symml", "xor5", "parity", "rd53"}
	for _, name := range losers {
		nw, ok := nets[name]
		if !ok {
			t.Fatalf("benchmark %q missing from the suite", name)
		}
		treeOpts := DefaultOptions(3)
		tres, err := Map(nw, treeOpts)
		if err != nil {
			t.Fatalf("%s tree: %v", name, err)
		}
		cutOpts := DefaultOptions(3)
		cutOpts.Engine = EngineCut
		cres, err := Map(nw, cutOpts)
		if err != nil {
			t.Fatalf("%s cut: %v", name, err)
		}
		if cres.LUTs >= tres.LUTs {
			t.Errorf("%s at K=3: cut %d LUTs vs tree %d — the reconvergent win regressed",
				name, cres.LUTs, tres.LUTs)
		}
	}
}

// TestCutEngineProvenancePartition runs the cover-partition invariant
// on the real benchmarks (the random-DAG version lives in
// internal/cut): with provenance on, the selected cones exactly
// partition the prepared subject graph's gates.
func TestCutEngineProvenancePartition(t *testing.T) {
	nets := differentialSuite(t)
	for _, name := range []string{"count", "alu2", "rot", "9symml"} {
		nw := nets[name]
		opts := DefaultOptions(4)
		opts.Engine = EngineCut
		opts.Provenance = true
		res, err := Map(nw, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Prepared == nil {
			t.Fatalf("%s: Provenance set but Prepared nil", name)
		}
		gates := make(map[string]bool)
		for _, n := range res.Prepared.Nodes {
			if !n.IsInput() {
				gates[n.Name] = true
			}
		}
		if err := res.Circuit.CheckProvenance(gates); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		for _, l := range res.Circuit.LUTs {
			p := res.Circuit.ProvenanceOf(l.Name)
			if p == nil {
				t.Fatalf("%s: LUT %q has no provenance", name, l.Name)
			}
			if p.Origin.String() != "cut" {
				t.Errorf("%s: LUT %q origin %q, want cut", name, l.Name, p.Origin)
			}
		}
	}
}

// TestEngineOptionSurface pins the engine-selection API semantics:
// parsing, the duplication-search rejection, and repacking reaching
// every engine.
func TestEngineOptionSurface(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"", EngineTree, true}, {"tree", EngineTree, true}, {"TREE", EngineTree, true},
		{"mis", EngineMIS, true}, {" cut ", EngineCut, true}, {"abc", EngineTree, false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if EngineTree.String() != "tree" || EngineMIS.String() != "mis" || EngineCut.String() != "cut" {
		t.Error("engine names drifted")
	}

	nets := differentialSuite(t)
	nw := nets["count"]
	for _, eng := range []Engine{EngineMIS, EngineCut} {
		opts := DefaultOptions(4)
		opts.Engine = eng
		if _, _, err := MapDuplicateCostAware(nw, opts); err == nil {
			t.Errorf("MapDuplicateCostAware with engine %s: want error, got nil", eng)
		}
	}

	// RepackLUTs is engine-independent post-processing: it must leave
	// every engine's circuit valid and never larger.
	for _, eng := range []Engine{EngineTree, EngineMIS, EngineCut} {
		opts := DefaultOptions(4)
		opts.Engine = eng
		plain, err := Map(nw, opts)
		if err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
		opts.RepackLUTs = true
		packed, err := Map(nw, opts)
		if err != nil {
			t.Fatalf("engine %s repack: %v", eng, err)
		}
		if packed.LUTs > plain.LUTs {
			t.Errorf("engine %s: repack grew the circuit %d -> %d", eng, plain.LUTs, packed.LUTs)
		}
		if err := Verify(nw, packed.Circuit, 64, 1); err != nil {
			t.Errorf("engine %s: repacked circuit not equivalent: %v", eng, err)
		}
	}
}
