#!/usr/bin/env bash
# Chaos + crash-safety end-to-end for cmd/chortled:
#
#  1. Race-detected chaos soak: ≥500 requests through the resilient
#     chortle/client against a server injecting seeded faults (latency
#     spikes, solve panics, forced evictions); asserts zero goroutine
#     leaks and zero incorrect 2xx bodies.
#  2. Snapshot round-trip: warm a server, SIGTERM it, restart with the
#     same -cache-snapshot; the restarted server must serve the same
#     bytes as the first one's cold map, as cache hits.
#  3. Snapshot corruption: flip a byte in the snapshot; the restarted
#     server must reject it (chortle_snapshot_rejected), boot cold, and
#     still serve the correct answer.
#  4. chortle -server against a chaos-mode chortled: the resilient CLI
#     client retries through the injected faults and must emit exactly
#     the bytes a local map produces.
#  5. Traced chaos: the same drill with -access-log on the server and
#     -server-trace on the client; every observed non-2xx response's
#     X-Trace-Id must have a matching access-log line, and the merged
#     client+server streams must render into a multi-process Chrome
#     trace (uploaded as a CI artifact).
#  6. Postmortem drill: a forced panic (X-Chaos-Panic) against an armed
#     server must write a bundle whose flight ring contains the failing
#     request's trace ID, and an induced SLO burn must escalate to
#     critical and write its own bundle; both must validate and render
#     through cmd/postmortem (summary, HTML, Perfetto trace).
set -uo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""

cleanup() {
    status=$?
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null
    if [ "$status" -ne 0 ]; then
        echo "=== chaos harness FAILED (exit $status); server logs follow ==="
        for f in "$workdir"/chortled*.err; do
            [ -f "$f" ] && { echo "--- $f ---"; cat "$f"; }
        done
    fi
    rm -rf "$workdir"
    exit "$status"
}
trap cleanup EXIT

fail() { echo "FAIL: $*"; exit 1; }

# start_server <logname> <args...>: starts chortled, sets server_pid and
# addr. The server prints "listening on <addr>" once bound.
start_server() {
    local logname=$1; shift
    "$workdir/chortled" -addr 127.0.0.1:0 "$@" \
        > "$workdir/$logname.out" 2>"$workdir/$logname.err" &
    server_pid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/^listening on //p' "$workdir/$logname.out")
        [ -n "$addr" ] && break
        kill -0 "$server_pid" 2>/dev/null || fail "chortled ($logname) died at startup"
        sleep 0.1
    done
    [ -n "$addr" ] || fail "chortled ($logname) never reported its address"
}

stop_server() {
    kill -TERM "$server_pid" 2>/dev/null
    wait "$server_pid" || fail "chortled did not exit cleanly on SIGTERM"
    server_pid=""
}

json_field() { python3 -c "import json,sys; print(json.load(sys.stdin)[\"$1\"])"; }

go build -o "$workdir/chortled" ./cmd/chortled || fail "building chortled"
go build -o "$workdir/chortle" ./cmd/chortle || fail "building chortle"
go run ./cmd/mcnc -opt rot > "$workdir/rot.blif" || fail "generating benchmark"

echo "=== 1/6 race-detected chaos soak (seeded faults, resilient client) ==="
go test -race -run TestChaosSoak -v ./cmd/chortled/ || fail "chaos soak test"

echo "=== 2/6 snapshot round-trip across SIGTERM + restart ==="
snap="$workdir/cache.snap"
start_server first -cache-snapshot "$snap" -snapshot-interval 1h
cold=$(curl -sf --data-binary @"$workdir/rot.blif" "http://$addr/map?k=4") \
    || fail "cold map on first server"
printf '%s' "$cold" | json_field blif > "$workdir/cold.blif"
stop_server
grep -q "final snapshot written" "$workdir/first.err" || fail "no final snapshot at drain"
[ -s "$snap" ] || fail "snapshot file empty or missing"

start_server second -cache-snapshot "$snap" -snapshot-interval 1h
grep -q "restored" "$workdir/second.err" || fail "restart did not restore the snapshot"
warm=$(curl -sf --data-binary @"$workdir/rot.blif" "http://$addr/map?k=4") \
    || fail "map on restarted server"
warm_hits=$(printf '%s' "$warm" | json_field cache_hits)
warm_misses=$(printf '%s' "$warm" | json_field cache_misses)
echo "warm-after-restart: hits=$warm_hits misses=$warm_misses"
[ "$warm_hits" -gt 0 ] || fail "restarted server did not hit the restored cache"
[ "$warm_misses" -eq 0 ] || fail "restarted server missed despite the snapshot"
printf '%s' "$warm" | json_field blif > "$workdir/warm.blif"
diff "$workdir/cold.blif" "$workdir/warm.blif" \
    || fail "warm-after-restart BLIF differs from the first process's cold map"
stop_server

echo "=== 3/6 corrupted snapshot boots cold and still serves ==="
python3 - "$snap" <<'EOF'
import sys
p = sys.argv[1]
b = bytearray(open(p, "rb").read())
b[len(b)//2] ^= 0x20
open(p, "wb").write(b)
EOF
start_server corrupt -cache-snapshot "$snap" -snapshot-interval 1h
grep -q "rejected" "$workdir/corrupt.err" || fail "corrupted snapshot was not rejected"
cold2=$(curl -sf --data-binary @"$workdir/rot.blif" "http://$addr/map?k=4") \
    || fail "map after rejected snapshot"
cold2_hits=$(printf '%s' "$cold2" | json_field cache_hits)
[ "$cold2_hits" -eq 0 ] || fail "rejected snapshot still produced cache hits"
printf '%s' "$cold2" | json_field blif > "$workdir/cold2.blif"
diff "$workdir/cold.blif" "$workdir/cold2.blif" \
    || fail "cold boot after rejection produced different BLIF"
metrics=$(curl -sf "http://$addr/metrics")
printf '%s\n' "$metrics" | grep -q '^chortle_snapshot_rejected 1' \
    || fail "/metrics does not count the rejected snapshot"
stop_server

echo "=== 4/6 resilient CLI client vs chaos-mode server ==="
start_server chaos -chaos 42
"$workdir/chortle" -k 4 -o "$workdir/local.blif" "$workdir/rot.blif" || fail "local map"
for i in 1 2 3 4 5; do
    "$workdir/chortle" -k 4 -server "http://$addr" -o "$workdir/remote.blif" "$workdir/rot.blif" \
        || fail "remote map $i through chaos"
    diff "$workdir/local.blif" "$workdir/remote.blif" \
        || fail "remote map $i differs from local map"
done
metrics=$(curl -sf "http://$addr/metrics")
printf '%s\n' "$metrics" | grep -q 'chortled_chaos_injected_total' \
    || fail "chaos server injected nothing"
stop_server

echo "=== 5/6 traced chaos: access log, trace IDs, multi-process timeline ==="
go build -o "$workdir/traceview" ./cmd/traceview || fail "building traceview"
access="$workdir/access.jsonl"
start_server traced -chaos 42 -access-log "$access"

# Traced remote maps: the client records spans sharing the server's
# trace IDs while chaos injects faults under it.
for i in 1 2 3; do
    "$workdir/chortle" -k 4 -server "http://$addr" \
        -server-trace "$workdir/client$i.jsonl" \
        -o "$workdir/traced.blif" "$workdir/rot.blif" \
        || fail "traced remote map $i"
    diff "$workdir/local.blif" "$workdir/traced.blif" \
        || fail "traced remote map $i differs from local map"
done

# Deterministic non-2xx responses: a bad engine (400) and a bad method
# (405). Every one must answer with an X-Trace-Id that has a matching
# non-2xx access-log line.
nontwoxx_ids=""
for i in 1 2 3; do
    hdrs=$(curl -s -D - -o /dev/null --data-binary @"$workdir/rot.blif" \
        "http://$addr/map?k=4&engine=nope")
    echo "$hdrs" | head -1 | grep -q 400 || fail "bad engine did not answer 400"
    tid=$(echo "$hdrs" | tr -d '\r' | sed -n 's/^X-Trace-Id: //Ip')
    [ -n "$tid" ] || fail "400 response carries no X-Trace-Id"
    nontwoxx_ids="$nontwoxx_ids $tid"
done
hdrs=$(curl -s -D - -o /dev/null "http://$addr/map")
echo "$hdrs" | head -1 | grep -q 405 || fail "GET /map did not answer 405"
tid=$(echo "$hdrs" | tr -d '\r' | sed -n 's/^X-Trace-Id: //Ip')
[ -n "$tid" ] || fail "405 response carries no X-Trace-Id"
nontwoxx_ids="$nontwoxx_ids $tid"

stop_server
for tid in $nontwoxx_ids; do
    line=$(grep "$tid" "$access") || fail "non-2xx trace $tid has no access-log line"
    printf '%s' "$line" | python3 -c '
import json, sys
rec = json.loads(sys.stdin.readline())
assert rec["outcome"] != "2xx", rec
assert rec["trace_id"], rec
' || fail "access-log line for $tid is not a non-2xx record"
done

# Every access-log line must parse as JSON with a trace ID, and
# chaos-injected failures (panic 500s the client retried through) must
# appear as non-2xx lines alongside the successes.
python3 - "$access" <<'EOF'
import json, sys
outcomes = {}
for line in open(sys.argv[1]):
    rec = json.loads(line)
    assert rec["trace_id"], rec
    outcomes[rec["outcome"]] = outcomes.get(rec["outcome"], 0) + 1
print("access-log outcomes:", outcomes)
assert outcomes.get("2xx", 0) >= 3, "traced maps missing from the access log"
assert sum(n for o, n in outcomes.items() if o != "2xx") >= 4, \
    "non-2xx responses missing from the access log"
EOF
[ $? -eq 0 ] || fail "access log failed validation"

# Merge every client span stream with the server access log into one
# multi-process Chrome trace and validate its shape.
timeline="$workdir/timeline.json"
"$workdir/traceview" -o "$timeline" \
    "$workdir"/client1.jsonl "$workdir"/client2.jsonl "$workdir"/client3.jsonl "$access" \
    || fail "traceview merge"
python3 - "$timeline" <<'EOF'
import json, sys
recs = json.load(open(sys.argv[1]))
procs = {r["pid"]: r["args"]["name"] for r in recs
         if r.get("ph") == "M" and r.get("name") == "process_name"}
names = set(procs.values())
assert {"client", "chortled"} <= names, f"timeline processes: {names}"
spans = [r for r in recs if r.get("ph") == "X"]
assert spans, "no spans in the merged timeline"
print(f"timeline: {len(procs)} processes, {len(spans)} spans")
EOF
[ $? -eq 0 ] || fail "merged timeline failed validation"

# Leave the evidence where CI can pick it up as an artifact.
if [ -n "${CHAOS_ARTIFACT_DIR:-}" ]; then
    mkdir -p "$CHAOS_ARTIFACT_DIR"
    cp "$timeline" "$access" "$workdir"/client[123].jsonl "$CHAOS_ARTIFACT_DIR/" \
        || fail "copying trace artifacts"
fi

echo "=== 6/6 postmortem drill: forced panic and SLO burn write renderable bundles ==="
go build -o "$workdir/postmortem" ./cmd/postmortem || fail "building postmortem"

# wait_bundle <dir> <reason>: polls for a bundle-*-<reason> directory.
wait_bundle() {
    local dir=$1 reason=$2
    bundle=""
    for _ in $(seq 1 50); do
        bundle=$(ls -d "$dir"/bundle-*-"$reason" 2>/dev/null | head -1)
        [ -n "$bundle" ] && return 0
        sleep 0.2
    done
    fail "no bundle-*-$reason appeared in $dir"
}

# 6a: forced panic. The X-Chaos-Panic header is honored only when
# -chaos is armed; the 500 must carry a trace ID that lands in the
# bundle's flight ring.
pm1="$workdir/pm-panic"
start_server pmpanic -chaos 42 -postmortem-dir "$pm1"
hdrs=$(curl -s -D - -o /dev/null -H 'X-Chaos-Panic: 1'     --data-binary @"$workdir/rot.blif" "http://$addr/map?k=4")
echo "$hdrs" | head -1 | grep -q 500 || fail "forced panic did not answer 500"
panic_tid=$(echo "$hdrs" | tr -d '\r' | sed -n 's/^X-Trace-Id: //Ip')
[ -n "$panic_tid" ] || fail "panic 500 carries no X-Trace-Id"
wait_bundle "$pm1" panic
panic_bundle=$bundle
grep -q "$panic_tid" "$panic_bundle/ring.jsonl" \
    || fail "panic bundle ring does not contain the failing trace $panic_tid"
stop_server

"$workdir/postmortem" "$panic_bundle" || fail "postmortem summary of panic bundle"
"$workdir/postmortem" -html "$workdir/panic.html" "$panic_bundle" \
    || fail "postmortem HTML of panic bundle"
grep -q "$panic_tid" "$workdir/panic.html" \
    || fail "panic report does not show the failing trace"
"$workdir/postmortem" -trace "$workdir/panic-trace.json" "$panic_bundle" \
    || fail "postmortem Perfetto trace of panic bundle"
python3 -c '
import json, sys
recs = json.load(open(sys.argv[1]))
assert isinstance(recs, list) and recs, "empty Perfetto trace"
' "$workdir/panic-trace.json" || fail "panic Perfetto trace invalid"

# 6b: SLO burn. An unmeetable latency objective makes ordinary traffic
# burn the whole error budget; the next evaluation tick must escalate
# to critical, stamp responses, and dump a bundle.
pm2="$workdir/pm-burn"
start_server pmburn -postmortem-dir "$pm2" \
    -slo 'availability=99.9,p95_solve_ms=0.000001' -slo-eval 1s
for i in 1 2 3 4 5; do
    curl -sf -o /dev/null --data-binary @"$workdir/rot.blif" "http://$addr/map?k=4" \
        || fail "burn map $i"
done
wait_bundle "$pm2" slo-burn
burn_bundle=$bundle
slo_status=$(curl -s -D - -o /dev/null --data-binary @"$workdir/rot.blif" \
    "http://$addr/map?k=4" | tr -d '\r' | sed -n 's/^X-Slo-Status: //Ip')
[ "$slo_status" = critical ] || fail "burning server did not stamp X-Slo-Status: critical (got '$slo_status')"
metrics=$(curl -sf "http://$addr/metrics") || fail "scraping /metrics on the burning server"
printf '%s\n' "$metrics" | grep -q 'chortled_slo_burn_rate' \
    || fail "/metrics missing chortled_slo_burn_rate"
stop_server
"$workdir/postmortem" "$burn_bundle" || fail "postmortem summary of burn bundle"
grep -q 'p95_solve_ms' "$burn_bundle/slo.json" \
    || fail "burn bundle slo.json missing the burning objective"

if [ -n "${CHAOS_ARTIFACT_DIR:-}" ]; then
    mkdir -p "$CHAOS_ARTIFACT_DIR"
    cp -r "$panic_bundle" "$CHAOS_ARTIFACT_DIR/" || fail "copying panic bundle"
    cp "$workdir/panic.html" "$workdir/panic-trace.json" "$CHAOS_ARTIFACT_DIR/" \
        || fail "copying postmortem renders"
fi

echo "chaos harness OK"
