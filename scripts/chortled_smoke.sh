#!/usr/bin/env bash
# End-to-end smoke for cmd/chortled: start the server, map a golden
# circuit twice through it, assert the second response reports shared-
# cache hits, check the hit shows up at /metrics, and verify SIGTERM
# drains gracefully (exit 0).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    status=$?
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    if [ "$status" -ne 0 ] && [ -f "$workdir/chortled.err" ]; then
        echo "=== smoke FAILED (exit $status); chortled logs follow ==="
        cat "$workdir/chortled.err"
    fi
    rm -rf "$workdir"
    exit "$status"
}
trap cleanup EXIT

go build -o "$workdir/chortled" ./cmd/chortled
go run ./cmd/mcnc -opt rot > "$workdir/rot.blif"

"$workdir/chortled" -addr 127.0.0.1:0 > "$workdir/chortled.out" 2>"$workdir/chortled.err" &
server_pid=$!

# The server prints "listening on <addr>" once bound.
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$workdir/chortled.out")
    [ -n "$addr" ] && break
    kill -0 "$server_pid" || { cat "$workdir/chortled.err"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "chortled never reported its address"; exit 1; }
echo "chortled on $addr"

curl -sf "http://$addr/healthz" >/dev/null

cold=$(curl -sf --data-binary @"$workdir/rot.blif" "http://$addr/map?k=4")
warm=$(curl -sf --data-binary @"$workdir/rot.blif" "http://$addr/map?k=4")

cold_luts=$(printf '%s' "$cold" | python3 -c 'import json,sys; print(json.load(sys.stdin)["luts"])')
warm_hits=$(printf '%s' "$warm" | python3 -c 'import json,sys; print(json.load(sys.stdin)["cache_hits"])')
warm_misses=$(printf '%s' "$warm" | python3 -c 'import json,sys; print(json.load(sys.stdin)["cache_misses"])')
echo "cold: $cold_luts LUTs; warm: hits=$warm_hits misses=$warm_misses"

[ "$cold_luts" -gt 0 ] || { echo "cold mapping produced no LUTs"; exit 1; }
[ "$warm_hits" -gt 0 ] || { echo "second request reported no cache hits"; exit 1; }
[ "$warm_misses" -eq 0 ] || { echo "second request missed the warm cache"; exit 1; }

# Byte-identical output across the cache temperature.
diff <(printf '%s' "$cold" | python3 -c 'import json,sys; print(json.load(sys.stdin)["blif"])') \
     <(printf '%s' "$warm" | python3 -c 'import json,sys; print(json.load(sys.stdin)["blif"])') \
    || { echo "warm BLIF differs from cold BLIF"; exit 1; }

# Buffer the scrape before grepping: grep -q on a pipe would SIGPIPE
# curl and trip pipefail even on a match.
metrics=$(curl -sf "http://$addr/metrics")
printf '%s\n' "$metrics" | grep -q '^chortle_shape_cache_hits [1-9]' \
    || { echo "/metrics does not show cache hits"; exit 1; }

kill -TERM "$server_pid"
wait "$server_pid" || { echo "chortled did not exit cleanly on SIGTERM"; exit 1; }
grep -q drained "$workdir/chortled.err" || { echo "chortled did not report a drain"; exit 1; }
echo "smoke OK"
