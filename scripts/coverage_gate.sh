#!/usr/bin/env sh
# Coverage gate for the mapper core: fails if internal/core statement
# coverage drops below the pinned floor. The floor sits a little under
# the measured baseline (90.8% as of the explainability PR) so routine
# refactors don't flap, but a real coverage regression trips it.
# Raise the floor when coverage improves durably.
set -eu

FLOOR="${COVERAGE_FLOOR:-89.0}"
PROFILE="$(mktemp)"
trap 'rm -f "$PROFILE"' EXIT

go test -coverprofile="$PROFILE" -coverpkg=chortle/internal/core ./internal/core

TOTAL="$(go tool cover -func="$PROFILE" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')"
echo "internal/core statement coverage: ${TOTAL}% (floor: ${FLOOR}%)"
if awk -v t="$TOTAL" -v f="$FLOOR" 'BEGIN { exit !(t < f) }'; then
    echo "FAIL: coverage ${TOTAL}% is below the ${FLOOR}% floor" >&2
    exit 1
fi
