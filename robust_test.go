package chortle

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"chortle/internal/core"
	"chortle/internal/network"
)

// Robustness contract of the public API: prompt cancellation, graceful
// budget degradation, structured sentinel errors, and internal panics
// recovered into *InternalError — never a crash.

// TestCancelledContextFastReturn: handing MapCtx an already-dead
// context must fail in well under 100ms even on the suite's largest
// circuit, returning context.Canceled and leaking no goroutines.
func TestCancelledContextFastReturn(t *testing.T) {
	nw, err := BenchmarkNetwork("des")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	baseG := runtime.NumGoroutine()
	start := time.Now()
	res, err := MapCtx(ctx, nw, DefaultOptions(5))
	elapsed := time.Since(start)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got res=%v err=%v, want nil result and context.Canceled", res, err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("cancelled MapCtx took %s, want < 100ms", elapsed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseG {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > %d at baseline", runtime.NumGoroutine(), baseG)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMidMapCancellation: a context that dies while the DP pool is
// running must abort the mapping with context.DeadlineExceeded.
func TestMidMapCancellation(t *testing.T) {
	nw, err := BenchmarkNetwork("des")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := MapCtx(ctx, nw, DefaultOptions(5))
	if err == nil {
		// The map beat the deadline; nothing to assert beyond validity.
		if res == nil {
			t.Fatal("nil result without error")
		}
		return
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestBudgetedMapDegradesAndVerifies: a starvation budget on a real
// benchmark must populate Result.Degraded yet still emit a circuit
// that simulates identically to the source network.
func TestBudgetedMapDegradesAndVerifies(t *testing.T) {
	nw, err := BenchmarkNetwork("9symml")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(5)
	opts.Budget.WorkUnits = 1
	res, err := Map(nw, opts)
	if err != nil {
		t.Fatalf("budgeted map failed: %v", err)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("starvation budget did not degrade any tree")
	}
	if err := Verify(nw, res.Circuit, 16, 1); err != nil {
		t.Fatalf("degraded circuit wrong: %v", err)
	}
}

// TestInternalErrorFromWorkerPanic: a panic inside a pool worker must
// surface from the public API as *InternalError with a stack, not as a
// process crash.
func TestInternalErrorFromWorkerPanic(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	core.FaultHook = func(site string, i int) {
		if site == "worker" {
			panic("injected fault")
		}
	}
	defer func() { core.FaultHook = nil }()

	nw, err := BenchmarkNetwork("9symml")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(4)
	opts.Parallel, opts.Memoize = true, false
	_, err = Map(nw, opts)
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("worker panic surfaced as %T (%v), want *InternalError", err, err)
	}
	if ie.Value != "injected fault" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError{Value: %v, len(Stack): %d}, want injected value and a stack",
			ie.Value, len(ie.Stack))
	}
}

// TestSentinelErrors: user-input failure conditions must classify with
// errors.Is against the exported sentinels, whichever layer detects
// them.
func TestSentinelErrors(t *testing.T) {
	nw, err := ReadBLIF(strings.NewReader(adderBLIF))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad K", func(t *testing.T) {
		if _, err := Map(nw, DefaultOptions(99)); !errors.Is(err, ErrBadK) {
			t.Fatalf("K=99: got %v, want ErrBadK", err)
		}
	})

	t.Run("cycle", func(t *testing.T) {
		cyc := network.New("cyc")
		a := cyc.AddInput("a")
		g1 := cyc.AddGate("g1", network.OpAnd, network.Fanin{Node: a})
		g2 := cyc.AddGate("g2", network.OpOr, network.Fanin{Node: g1})
		g1.Fanins = append(g1.Fanins, network.Fanin{Node: g2})
		cyc.MarkOutput("y", g2, false)
		if _, err := Map(cyc, DefaultOptions(4)); !errors.Is(err, ErrCycle) {
			t.Fatalf("cyclic network: got %v, want ErrCycle", err)
		}
	})

	t.Run("blif duplicate", func(t *testing.T) {
		src := ".model d\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n"
		if _, err := ReadBLIF(strings.NewReader(src)); !errors.Is(err, ErrDuplicateName) {
			t.Fatalf("duplicate .names: got %v, want ErrDuplicateName", err)
		}
	})

	t.Run("blif cycle", func(t *testing.T) {
		src := ".model c\n.inputs a\n.outputs y\n.names a x y\n11 1\n.names a y x\n11 1\n.end\n"
		if _, err := ReadBLIF(strings.NewReader(src)); !errors.Is(err, ErrCycle) {
			t.Fatalf("cyclic model: got %v, want ErrCycle", err)
		}
	})

	t.Run("pla arity", func(t *testing.T) {
		src := ".i 3\n.o 1\n11 1\n.e\n"
		if _, err := ReadPLA(strings.NewReader(src)); !errors.Is(err, ErrArityMismatch) {
			t.Fatalf("short cube: got %v, want ErrArityMismatch", err)
		}
	})

	t.Run("pla duplicate label", func(t *testing.T) {
		src := ".i 2\n.o 1\n.ilb a a\n.ob y\n11 1\n.e\n"
		if _, err := ReadPLA(strings.NewReader(src)); !errors.Is(err, ErrDuplicateName) {
			t.Fatalf("duplicate label: got %v, want ErrDuplicateName", err)
		}
	})
}
