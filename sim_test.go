package chortle

import (
	"testing"

	"chortle/internal/bench"
)

// End-to-end functional cross-check riding on the golden suite: every
// bundled benchmark's mapped circuit must implement its source network.
// Circuits with at most 16 primary inputs are checked exhaustively;
// wider ones with 157 random 64-pattern blocks (~10k vectors). This is
// the semantic complement of TestGolden, which only pins statistics.

const simBlocks = 157 // 157 * 64 > 10000 vectors for non-exhaustive circuits

func TestMappedCircuitsImplementNetworks(t *testing.T) {
	for _, c := range goldenCircuits() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			nw, err := bench.Optimized(c)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Map(nw, DefaultOptions(4))
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(nw, res.Circuit, simBlocks, 42); err != nil {
				t.Errorf("mapped circuit diverges from network: %v", err)
			}
		})
	}
}

// TestBudgetDegradedCircuitsImplementNetworks covers the degraded path
// end to end: a starvation-level work budget forces trees onto the
// bin-packing fallback, and the resulting circuit must still be
// functionally equivalent.
func TestBudgetDegradedCircuitsImplementNetworks(t *testing.T) {
	degradedSomewhere := false
	for _, name := range []string{"9symml", "alu2", "count", "rd73"} {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			nw, err := bench.Optimized(c)
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions(5)
			opts.Budget.WorkUnits = 60 // starve: most nontrivial trees trip this
			res, err := Map(nw, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Degraded) > 0 {
				degradedSomewhere = true
			}
			if err := Verify(nw, res.Circuit, simBlocks, 43); err != nil {
				t.Errorf("degraded circuit diverges from network (%d trees degraded): %v",
					len(res.Degraded), err)
			}
		})
	}
	if !degradedSomewhere {
		t.Error("work budget of 60 units degraded no trees anywhere; the test is not exercising the fallback path")
	}
}
