package chortle

import (
	"io"

	"chortle/internal/buildinfo"
	"chortle/internal/metrics"
)

// BuildVersion returns the build identity: the module version when
// built from a tagged module, else the VCS revision ("+dirty" when the
// tree was modified), else "dev".
func BuildVersion() string { return buildinfo.Version() }

// BuildGoVersion returns the Go toolchain version of the build.
func BuildGoVersion() string { return buildinfo.GoVersion() }

// BuildEngines returns the comma-joined mapping-engine list this build
// serves ("tree,mis,cut").
func BuildEngines() string { return buildinfo.EngineList() }

// PrintVersion writes the canonical one-line -version output for a
// tool: "<tool> <version> <goversion> engines=tree,mis,cut".
func PrintVersion(w io.Writer, tool string) { buildinfo.Print(w, tool) }

// RegisterBuildInfo exposes the build identity on a registry as the
// conventional constant-1 info gauge:
//
//	<name>{version="...",goversion="...",engines="tree,mis,cut"} 1
//
// Use "chortled_build_info" for the server, "chortle_build_info" for
// the CLI tools. Joining on it in PromQL tags every other series with
// the running build.
func RegisterBuildInfo(reg *MetricsRegistry, name string) {
	reg.Gauge(name, "Build identity (constant 1; the labels carry the information).",
		metrics.Label{Key: "version", Value: buildinfo.Version()},
		metrics.Label{Key: "goversion", Value: buildinfo.GoVersion()},
		metrics.Label{Key: "engines", Value: buildinfo.EngineList()},
	).Set(1)
}
